#!/usr/bin/env python
"""The Eridani replica under a day of campus load.

Reproduces the paper's production setting: the 16-node, 64-core cluster
(§III.A) inside the Queensgate campus grid, serving a working day of
mixed Table-I application load (mostly Linux scientific codes with a
Windows rendering/engineering share).  Prints an hourly OS-occupancy
timeline and the day's outcome, then the same day on a statically split
cluster for contrast.

Run with::

    python examples/eridani_campus_grid.py
"""

from repro.compare import HybridSystem, StaticSplitSystem, run_scenario
from repro.core.config import MiddlewareConfig
from repro.metrics.report import Table
from repro.metrics.utilization import utilization_timeline
from repro.simkernel import HOUR, MINUTE
from repro.workloads import make_scenario


def describe(result, system) -> None:
    print(f"  completed {result.completed}/{result.submitted} jobs, "
          f"rejected {result.rejected}")
    print(f"  useful utilisation: {result.useful_utilization:.1%}")
    print(f"  mean wait: Linux {result.wait_linux.mean / 60:.1f} min, "
          f"Windows {result.wait_windows.mean / 60:.1f} min")
    print(f"  OS switches: {result.switches}")


def main() -> None:
    jobs = make_scenario("campus_day", seed=2012)
    linux_jobs = sum(1 for j in jobs if j.os_name == "linux")
    print(f"campus day: {len(jobs)} jobs "
          f"({linux_jobs} Linux, {len(jobs) - linux_jobs} Windows), "
          "drawn from the Table-I catalog\n")

    print("=== Eridani with dualboot-oscar v2 ===")
    hybrid = HybridSystem(
        num_nodes=16, seed=2012, version=2,
        config=MiddlewareConfig(version=2, check_cycle_s=10 * MINUTE),
    )
    result = run_scenario(hybrid, jobs, horizon_s=10 * HOUR)
    describe(result, hybrid)

    # hourly busy-core timeline
    records = hybrid.recorder.workload_jobs()
    timeline = utilization_timeline(records, result.horizon_s, bin_s=HOUR)
    table = Table(["hour", "busy cores (of 64)", "nodes in Windows"],
                  title="\nHourly load")
    for hour, busy in enumerate(timeline):
        t = hour * HOUR
        windows = sum(
            1 for iv in hybrid.recorder.intervals
            if iv.os_name == "windows" and iv.start <= t
            and (iv.end is None or iv.end > t)
        )
        table.add_row([hour, round(float(busy), 1), windows])
    print(table.render())

    print("\n=== the same day on a 12L/4W static split ===")
    split = StaticSplitSystem(num_nodes=16, windows_nodes=4, seed=2012)
    split_result = run_scenario(split, jobs, horizon_s=10 * HOUR)
    describe(split_result, split)

    print("\nhybrid vs split useful utilisation: "
          f"{result.useful_utilization:.1%} vs "
          f"{split_result.useful_utilization:.1%}")
    print("(a split whose ratio happens to match the day's mix can win a "
          "single day; the hybrid's advantage is robustness across mixes — "
          "run benchmarks/bench_e2_utilization.py for the sweep, or rerun "
          "this day with a 50% Windows share)")


if __name__ == "__main__":
    main()
