#!/usr/bin/env python
"""Deployment walkthrough: every step of v1 vs v2, with the effort bill.

Narrates the §III.C / §IV.B deployment stories on a 4-node cluster:

* v1 — hand-edited ``ide.disk``, the three ``oscarimage.master`` edits,
  the patched ``diskpart.txt``; then a Windows reimage that wipes Linux
  (diskpart ``clean``) and forces a full Linux redeploy;
* v2 — patched OSCAR accepts the ``skip`` label, PXE makes the MBR
  irrelevant, the Figure-15 script reimages Windows without touching
  Linux.

Run with::

    python examples/deployment_walkthrough.py
"""

from repro.core import MiddlewareConfig, build_hybrid_cluster
from repro.simkernel import MINUTE


def walkthrough(version: int) -> None:
    print(f"\n{'=' * 60}\n dualboot-oscar v{version} deployment\n{'=' * 60}")
    hybrid = build_hybrid_cluster(
        num_nodes=4, seed=1, version=version,
        config=MiddlewareConfig(version=version),
    )
    hybrid.deploy()
    hybrid.wait_for_nodes()

    print(f"deployed; steps so far: {hybrid.effort.count()} manual "
          "intervention(s):")
    for step in hybrid.effort.steps:
        print(f"  [{step.category}] {step.description}")

    node = hybrid.cluster.compute_nodes[0]
    node_disk = node.disk
    print(f"\n{node.name} disk layout after deployment:")
    print(node_disk.layout_summary())
    print(f"firmware boot order: {node.firmware.boot_order}")

    before = hybrid.effort.count()
    print(f"\n-- reimaging Windows on {node.name} "
          f"(share holds the v{version} script) --")
    hybrid.reimage_windows(node)
    hybrid.wait_for_nodes(timeout_s=20 * MINUTE)
    added = hybrid.effort.steps[before:]
    if added:
        print("this reimage cost the administrator:")
        for step in added:
            print(f"  [{step.category}] {step.description}")
    else:
        print("this reimage cost the administrator: nothing")
    print(f"{node.name} is back up under {node.os_name}")

    print("\n-- rebuilding the golden node image --")
    before = hybrid.effort.count()
    hybrid.rebuild_image()
    rebuild_cost = hybrid.effort.count() - before
    print(f"image rebuild required {rebuild_cost} hand edit(s)"
          + (" (the §III.C.1 edits must be redone every time)"
             if rebuild_cost else " — regenerated automatically (§IV.B)"))

    print(f"\nTOTAL interventions for v{version}: {hybrid.effort.count()}")


def main() -> None:
    walkthrough(1)
    walkthrough(2)
    print("\nsee benchmarks/bench_e4_admin_effort.py for the multi-round "
          "lifecycle comparison")


if __name__ == "__main__":
    main()
