#!/usr/bin/env python
"""Inspect the paper's text artefacts, live.

Prints, from a running simulated cluster, the exact text formats the
paper reproduces in its figures: the detector's three outputs (Figure 6),
``pbsnodes`` (Figure 7), ``qstat -f`` (Figure 8), the generated GRUB
control files (Figures 2-3), and the three diskpart scripts (Figures
9/10/15).

Run with::

    python examples/inspect_formats.py
"""

from repro.core.controller import DualBootMenuSpec, make_dualboot_menu
from repro.core.controller_v1 import redirect_menu_lst
from repro.core.detector import PbsDetector
from repro.core.switchjob import pbs_switch_script_v1
from repro.pbs import JobSpec, PbsCommands, PbsServer
from repro.simkernel import Simulator
from repro.storage.diskpart import (
    MODIFIED_DISKPART_TXT_V1,
    ORIGINAL_DISKPART_TXT,
    REIMAGE_DISKPART_TXT_V2,
)


def banner(title: str) -> None:
    print(f"\n{'=' * 64}\n{title}\n{'=' * 64}")


def main() -> None:
    sim = Simulator()
    server = PbsServer(sim, first_jobid=1185)
    for i in range(1, 17):
        server.create_node(f"enode{i:02d}", np=4)
        server.node_up(f"enode{i:02d}")
    commands = PbsCommands(server)
    detector = PbsDetector(commands)

    banner("Figure 6 — detector outputs in the three queue states")
    print("[empty cluster]")
    print(detector.check().text())
    server.qsub(JobSpec(name="sleep", nodes=1, ppn=4, runtime_s=600.0))
    print("\n[one job running]")
    print(detector.check().text())
    for host in list(server.nodes):
        server.node_down(host)
    sim.run()
    server.qsub(JobSpec(name="md", nodes=1, ppn=4, runtime_s=600.0))
    print("\n[queue stuck]")
    print(detector.check().text())

    banner("Figure 8 — qstat -f")
    print(commands.qstat_f() or "(no active jobs)")

    banner("Figure 7 — pbsnodes (first stanza)")
    print(commands.pbsnodes().split("\n\n")[0])

    spec = DualBootMenuSpec(boot_partition=2, root_partition=7)
    banner("Figure 2 — /boot/grub/menu.lst (the redirect)")
    print(redirect_menu_lst(spec, fat_partition=6))
    banner("Figure 3 — controlmenu.lst")
    print(make_dualboot_menu(spec, "linux"))
    banner("Figure 4 — the PBS OS-switch job")
    print(pbs_switch_script_v1("windows", method="bootcontrol"))

    banner("Figures 9 / 10 / 15 — the three diskpart.txt scripts")
    print("[Figure 9 — stock]\n" + ORIGINAL_DISKPART_TXT)
    print("[Figure 10 — dualboot-oscar v1]\n" + MODIFIED_DISKPART_TXT_V1)
    print("[Figure 15 — v2 reimage]\n" + REIMAGE_DISKPART_TXT_V2)


if __name__ == "__main__":
    main()
