#!/usr/bin/env python
"""Quickstart: build a 4-node hybrid cluster, watch it switch an OS.

Run with::

    python examples/quickstart.py

Builds the simulated cluster, deploys dualboot-oscar v2 (PXE/GRUB4DOS
flag control), submits a Linux job and a Windows job, and narrates what
the middleware does: the Windows job finds no Windows nodes, the queue
goes "stuck", the daemons switch a node, the job runs.
"""

from repro import build_hybrid_cluster
from repro.core.config import MiddlewareConfig
from repro.simkernel import HOUR, MINUTE, format_duration


def main() -> None:
    config = MiddlewareConfig(version=2, check_cycle_s=5 * MINUTE)
    hybrid = build_hybrid_cluster(num_nodes=4, seed=42, config=config)

    print("deploying dualboot-oscar v2 on 4 nodes...")
    hybrid.deploy()
    hybrid.wait_for_nodes()
    print(f"t={format_duration(hybrid.sim.now)}  nodes up: "
          f"{hybrid.nodes_by_os()}")

    print("\nsubmitting a Linux MD job (DL_POLY-style, 1 node x 4 cores)...")
    linux_id = hybrid.submit_linux_job("dlpoly-demo", nodes=1, ppn=4,
                                       runtime_s=30 * MINUTE)

    print("submitting a Windows render job (Backburner-style, 4 cores)...")
    win_job = hybrid.submit_windows_job("backburner-demo", cores=4,
                                        runtime_s=20 * MINUTE)

    print("\nrunning the simulation for 2 hours...")
    hybrid.sim.run(until=hybrid.sim.now + 2 * HOUR)

    linux_job = hybrid.pbs.jobs[linux_id]
    print(f"\nLinux job:   state={linux_job.state.value} "
          f"wait={format_duration(linux_job.wait_time_s)}")
    print(f"Windows job: state={win_job.state.value} "
          f"wait={format_duration(win_job.wait_time_s)}")
    print(f"nodes now:   {hybrid.nodes_by_os()}")

    print("\ncontrol-loop decisions:")
    for record in hybrid.daemons.linux.decisions:
        if record.decision.is_switch:
            print(f"  t={format_duration(record.time)}  switch "
                  f"{record.decision.num_nodes} node(s) to "
                  f"{record.decision.target_os}: {record.decision.reason}")

    switched = [n for n in hybrid.cluster.compute_nodes
                if len(n.boot_records) > 1]
    for node in switched:
        record = node.boot_records[-1]
        print(f"\n{node.name} rebooted into {record.os_name} in "
              f"{format_duration(record.duration_s)} via {record.via}")
    print("\ndone — the paper's §III claim: a switch takes under 5 minutes.")


if __name__ == "__main__":
    main()
