#!/usr/bin/env python
"""Policy playground: try switch policies against a chosen scenario.

The paper leaves the decision rule as future work (§V); this example
runs any of the built-in policies against any named workload scenario::

    python examples/policy_playground.py                   # defaults
    python examples/policy_playground.py oscillating eager
    python examples/policy_playground.py campus_day threshold
"""

import sys

from repro.compare import HybridSystem, run_scenario
from repro.core.config import MiddlewareConfig
from repro.core.policy import (
    EagerPolicy,
    FcfsPolicy,
    ReservePolicy,
    ThresholdPolicy,
)
from repro.metrics.report import Table
from repro.simkernel import HOUR, MINUTE
from repro.workloads import SCENARIOS, make_scenario

POLICIES = {
    "fcfs": lambda: (FcfsPolicy(), False),
    "threshold": lambda: (ThresholdPolicy(threshold=2), False),
    "eager": lambda: (EagerPolicy(), True),
    "reserve": lambda: (ReservePolicy(min_linux=2, min_windows=2), False),
}


def main() -> None:
    scenario_name = sys.argv[1] if len(sys.argv) > 1 else "windows_burst"
    policy_names = sys.argv[2:] or list(POLICIES)
    if scenario_name not in SCENARIOS:
        raise SystemExit(f"unknown scenario {scenario_name!r}; "
                         f"pick one of {sorted(SCENARIOS)}")

    jobs = make_scenario(scenario_name, seed=11)
    print(f"scenario {scenario_name!r}: {len(jobs)} jobs "
          f"({sum(1 for j in jobs if j.os_name == 'windows')} Windows)\n")

    table = Table(
        ["policy", "useful util", "wait L (min)", "wait W (min)",
         "switches", "completed"],
        title=f"16 nodes, 10-minute communicator cycle, scenario "
        f"{scenario_name!r}",
    )
    for name in policy_names:
        if name not in POLICIES:
            raise SystemExit(f"unknown policy {name!r}; "
                             f"pick from {sorted(POLICIES)}")
        policy, eager = POLICIES[name]()
        system = HybridSystem(
            num_nodes=16, seed=11, version=2,
            config=MiddlewareConfig(
                version=2, check_cycle_s=10 * MINUTE,
                eager_detectors=eager,
            ),
            policy=policy,
            label_suffix=f"-{name}",
        )
        result = run_scenario(system, jobs, horizon_s=12 * HOUR)
        table.add_row([
            name,
            result.useful_utilization,
            result.wait_linux.mean / 60.0,
            result.wait_windows.mean / 60.0,
            result.switches,
            f"{result.completed}/{result.submitted}",
        ])
    print(table.render())


if __name__ == "__main__":
    main()
