#!/usr/bin/env python
"""The §IV.B case study: MATLAB MDCS genetic-algorithm optimisation.

"Our system was tested on an application requiring optimisation of
Genetic Algorithms using the Distributed and Parallel MATLAB."  A GA
master iterates generations; each generation fans its fitness
evaluations out over MDCS workers — Windows HPC jobs on nodes that
dualboot-oscar switches over from the Linux side, and releases back when
the optimisation ends.

Run with::

    python examples/mdcs_genetic_algorithm.py
"""

from repro.compare import HybridSystem, run_scenario
from repro.core.config import MiddlewareConfig
from repro.core.policy import EagerPolicy
from repro.simkernel import HOUR, MINUTE, format_duration
from repro.workloads import make_scenario


def main() -> None:
    jobs = make_scenario("ga_case_study", seed=7)
    ga = [j for j in jobs if j.tag == "mdcs-ga"]
    print(f"GA optimisation: {len(ga)} generations x {ga[0].cores} MDCS "
          "workers, over a Linux MD background "
          f"({len(jobs) - len(ga)} background jobs)\n")

    system = HybridSystem(
        num_nodes=16, seed=7, version=2,
        config=MiddlewareConfig(
            version=2, check_cycle_s=10 * MINUTE, eager_detectors=True
        ),
        policy=EagerPolicy(),
    )
    result = run_scenario(system, jobs, horizon_s=8 * HOUR)

    records = {r.name: r for r in system.recorder.workload_jobs()}
    print("generation timeline:")
    for job in ga:
        record = records[job.name]
        wait = record.wait_s or 0.0
        print(f"  {job.name}: arrived t={format_duration(job.arrival_s)}, "
              f"waited {format_duration(wait)}, "
              f"ran {format_duration(record.run_s or 0.0)}")

    background = [records[j.name] for j in jobs if j.tag == "background"]
    done = sum(1 for r in background if r.completed)
    print(f"\nLinux background: {done}/{len(background)} completed "
          f"(mean wait {sum((r.wait_s or 0.0) for r in background) / max(1, len(background)) / 60:.1f} min)")
    print(f"OS switches over the run: {result.switches}")
    print("\nthe first generation pays the switch-over (minutes); the rest "
          "start on warm Windows workers — '"
          "as load shifted between the two OS environment, the system "
          "seamlessly adjusted' (§IV.B)")


if __name__ == "__main__":
    main()
