"""F9/F10/F14/F15 — diskpart scripts and the v2 ide.disk, on real state."""

from repro.experiments.figures_disks import run


def test_bench_figures_disks(run_once, publish):
    output = run_once(run, seed=0)
    publish(output)
    h = output.headline
    assert not h["fig9_linux_survives"]
    assert not h["fig10_linux_survives"]
    assert h["fig15_linux_survives"]
    assert h["skip_partition_unformatted"]
    assert h["skip_partition_size_mb"] == 16000.0
    assert h["v2_root_partition"] == 6
