"""T1 — regenerate Table I and the per-cluster-type coverage numbers."""

from repro.experiments.table1 import run


def test_bench_table1(run_once, publish):
    output = run_once(run, seed=0)
    publish(output)
    h = output.headline
    assert h["total_apps"] == 15
    assert h["hybrid_runs"] == 15
    # single-OS clusters strand part of the catalog (the paper's point)
    assert h["linux_only_cluster_runs"] == 13
    assert h["windows_only_cluster_runs"] == 5
