"""E11 — energy accounting: always-on vs power-aware at equal utilisation."""

from repro.experiments.e11_energy import run


def test_bench_e11_energy(run_once, publish):
    output = run_once(run, seed=0)
    publish(output)
    h = output.headline
    assert h["power_aware_saves_energy"]
    assert h["equal_utilisation"]
    assert h["elastic_engaged"]
    assert h["burst_pool_engaged"]
    assert h["no_spurious_fences"]
    assert h["deterministic"] and h["trace_deterministic"]
    assert h["trace_invariants_ok"]
    # the headline number: joules per completed job-hour must drop at
    # every size, and the largest fleet must still show real savings
    for row in h["per_size"].values():
        assert (
            row["power-aware"]["joules_per_job_hour"]
            < row["always-on"]["joules_per_job_hour"]
        )
    assert h["savings_pct_by_size"][str(max(h["sizes"]))] > 10.0
