"""F5–F8 — detector wire strings over live pbsnodes/qstat -f text."""

from repro.experiments.figures_detector import run


def test_bench_figures_detector(run_once, publish):
    output = run_once(run, seed=0)
    publish(output)
    h = output.headline
    assert h["wire_other"] == "00000none"
    assert h["wire_running"] == "00000none"
    assert h["wire_stuck"] == h["stuck_wire_expected"]
    assert h["wire_stuck"].startswith("10004")
    assert h["qstat_has_exec_host"]
    assert h["pbsnodes_has_status"]
