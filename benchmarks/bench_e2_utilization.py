"""E2 — utilisation sweep: hybrid vs static splits vs mono-stable."""

from repro.experiments.e2_utilization import run


def test_bench_e2_utilization(run_once, publish):
    output = run_once(run, seed=0)
    publish(output)
    h = output.headline
    assert h["hybrid_at_least_matches_every_static_split"]
    assert h["eager_hybrid_beats_every_static_split"]
    means = h["mean_useful_util"]
    # static splits collapse at the mix extreme that starves them
    per = h["per_fraction"]
    extremes = [k for k in per if k in (0.0, 1.0)]
    for fraction in extremes:
        static_vals = [
            v for label, v in per[fraction].items()
            if label.startswith("static-split")
        ]
        assert per[fraction]["hybrid-v2"] >= min(static_vals)
