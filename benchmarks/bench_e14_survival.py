"""E14 — node-failure storm survival (heartbeat fencing + job recovery)."""

from repro.experiments.e14_survival import run


def test_bench_e14_survival(run_once, publish):
    output = run_once(run, seed=0)
    publish(output)
    h = output.headline
    assert h["storm_hit_running_jobs"]
    assert h["rerunnable_survival_is_100pct"]
    assert h["fenced_nodes_rejoined"]
    assert h["every_size_fenced_and_recovered"]
    assert h["checkpointing_reduces_lost_work"]
    assert h["deterministic"] and h["trace_deterministic"]
    assert h["trace_invariants_ok"]
    # at full scale the 1024-node storm must still lose nothing
    largest = h["per_size"][str(max(h["sizes"]))]
    assert largest["survival_rate"] == 1.0
    assert largest["failed_on_fence"] == 0
