"""E4 — administration effort across a maintenance lifecycle, v1 vs v2."""

from repro.experiments.e4_admin_effort import run


def test_bench_e4_admin_effort(run_once, publish):
    output = run_once(run, seed=0)
    publish(output)
    h = output.headline
    assert h["v2_total_less_than_v1"]
    assert h["v1_has_collateral_reinstalls"]
    assert h["v2_has_zero_collateral"]
    # v1's initial deployment alone needs the five §III hand edits
    assert h["v1"]["deploy"] == 5
    assert h["v2"]["deploy"] == 2
    # the gap grows with every maintenance round
    assert h["v1"]["total"] >= 3 * h["v2"]["total"]
