"""Benchmark-harness plumbing.

Every bench runs its experiment exactly once under pytest-benchmark
(``pedantic(rounds=1)``: the timing of interest is the one full
reproduction run, not a micro-benchmark average) and *publishes* the
rendered tables — to the terminal (so ``bench_output.txt`` carries the
reproduced rows) and to ``benchmarks/reports/<id>.txt``.
"""

import pathlib

import pytest

REPORTS_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture()
def publish(capsys):
    """Print an ExperimentOutput past pytest's capture and archive it."""

    def _publish(output) -> None:
        text = output.render()
        REPORTS_DIR.mkdir(exist_ok=True)
        safe_id = output.experiment_id.lower().replace("/", "_").replace("-", "_")
        (REPORTS_DIR / f"{safe_id}.txt").write_text(text + "\n")
        with capsys.disabled():
            print()
            print(text)
            print()

    return _publish


@pytest.fixture()
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer."""

    def _run(fn, **kwargs):
        return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)

    return _run
