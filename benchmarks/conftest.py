"""Benchmark-harness plumbing.

Every bench runs its experiment exactly once under pytest-benchmark
(``pedantic(rounds=1)``: the timing of interest is the one full
reproduction run, not a micro-benchmark average) and *publishes* the
rendered tables — to the terminal (so ``bench_output.txt`` carries the
reproduced rows) and to ``benchmarks/reports/<id>.txt``.

Each bench additionally drops a machine-readable timing baseline at
``benchmarks/reports/BENCH_<name>.json`` so successive runs can be
diffed for regressions without parsing pytest-benchmark's terminal
table.
"""

import json
import pathlib
import platform

import pytest

REPORTS_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture()
def publish(capsys):
    """Print an ExperimentOutput past pytest's capture and archive it."""

    def _publish(output) -> None:
        text = output.render()
        REPORTS_DIR.mkdir(exist_ok=True)
        safe_id = output.experiment_id.lower().replace("/", "_").replace("-", "_")
        (REPORTS_DIR / f"{safe_id}.txt").write_text(text + "\n")
        with capsys.disabled():
            print()
            print(text)
            print()

    return _publish


@pytest.fixture(autouse=True)
def _bench_baseline(request):
    """Emit a ``BENCH_*.json`` baseline for every benchmark-using test.

    Historically only the ``run_once`` experiment benches wrote baselines;
    the substrate micro-benches timed the kernel/detector/scheduler hot
    paths without leaving a machine-readable record, so optimisations
    there were invisible in the perf trajectory.  This autouse fixture
    covers both: any test that requested the ``benchmark`` fixture gets a
    baseline, named after the test.
    """
    uses_benchmark = "benchmark" in request.fixturenames
    # Resolve during setup: teardown-time getfixturevalue is unreliable.
    benchmark = request.getfixturevalue("benchmark") if uses_benchmark else None

    yield

    if benchmark is None:
        return
    stats = getattr(benchmark, "stats", None)
    if stats is None:  # the bench errored before the timed call
        return
    name = request.node.name.replace("[", "_").replace("]", "").strip("_")
    REPORTS_DIR.mkdir(exist_ok=True)
    baseline = {
        "bench": request.node.name,
        "module": request.node.parent.name,
        "seconds": stats.stats.mean,
        "rounds": stats.stats.rounds,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    path = REPORTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")


@pytest.fixture()
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer (the
    timing of interest is the one full reproduction run); the baseline
    JSON is emitted by ``_bench_baseline``."""

    def _run(fn, **kwargs):
        return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)

    return _run
