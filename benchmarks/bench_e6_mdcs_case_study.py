"""E6 — the MDCS genetic-algorithm case study (§IV.B)."""

from repro.experiments.e6_mdcs import run


def test_bench_e6_mdcs(run_once, publish):
    output = run_once(run, seed=0)
    publish(output)
    h = output.headline
    assert h["seamless"]
    assert h["ga_completed"] == h["ga_total"] == 12
    assert h["background_completed"] == h["background_total"]
    assert h["switches"] >= 2  # nodes moved out AND back
    assert h["windows_peak_nodes"] >= 2
    # only the first generation pays the switch; later ones start warm
    assert h["steady_state_wait_min"] < h["first_generation_wait_min"]
    assert h["steady_state_wait_min"] < 2.0
