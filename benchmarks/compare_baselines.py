"""Diff fresh ``BENCH_*.json`` timings against the committed reference.

The bench harness (``benchmarks/conftest.py``) drops one machine-local
``benchmarks/reports/BENCH_<name>.json`` per benchmark.  This script
compares those fresh numbers with ``benchmarks/reference_baselines.json``
(committed) and exits non-zero when any bench regressed by more than the
tolerance (default 25%).

Because absolute wall time varies across machines, the comparison is
*normalised* by default: every bench's fresh/reference ratio is divided
by the median ratio over all matched benches, so a uniformly faster or
slower host cancels out and only benches that slowed down **relative to
the rest of the suite** fail the gate.  Pass ``--raw`` on a machine that
produced the reference itself to compare absolute times instead.

Usage::

    PYTHONPATH=src:. python -m pytest -q benchmarks/bench_kernel_micro.py \
        benchmarks/bench_substrate_micro.py       # refresh BENCH_*.json
    python benchmarks/compare_baselines.py        # gate (CI perf-smoke)
    python benchmarks/compare_baselines.py --update   # re-pin reference
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Tuple

REPORTS_DIR = pathlib.Path(__file__).parent / "reports"
REFERENCE_PATH = pathlib.Path(__file__).parent / "reference_baselines.json"

#: Fail when a bench is more than this factor slower (1.25 == +25%).
DEFAULT_TOLERANCE = 1.25


def load_fresh(reports_dir: pathlib.Path) -> Dict[str, float]:
    """name -> mean seconds, from every ``BENCH_*.json`` in *reports_dir*."""
    fresh = {}
    for path in sorted(reports_dir.glob("BENCH_*.json")):
        record = json.loads(path.read_text())
        name = path.stem[len("BENCH_"):]
        fresh[name] = float(record["seconds"])
    return fresh


def load_reference(reference_path: pathlib.Path) -> Dict[str, float]:
    record = json.loads(reference_path.read_text())
    return {name: float(entry["seconds"])
            for name, entry in record["benches"].items()}


def write_reference(reference_path: pathlib.Path,
                    fresh: Dict[str, float]) -> None:
    record = {
        "comment": (
            "Reference wall-time baselines for compare_baselines.py; "
            "regenerate with --update after an intentional perf change."
        ),
        "benches": {
            name: {"seconds": seconds}
            for name, seconds in sorted(fresh.items())
        },
    }
    reference_path.write_text(json.dumps(record, indent=2) + "\n")


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def compare(
    fresh: Dict[str, float],
    reference: Dict[str, float],
    tolerance: float,
    normalise: bool,
) -> Tuple[List[str], List[str]]:
    """Return (report lines, failure lines) for the matched benches."""
    matched = sorted(set(fresh) & set(reference))
    if not matched:
        return [], ["no benches matched between fresh reports and reference "
                    "(run the bench suites first)"]
    ratios = {name: fresh[name] / reference[name] for name in matched}
    scale = _median(list(ratios.values())) if normalise else 1.0
    if scale <= 0:
        scale = 1.0
    lines = [
        f"machine speed factor (median fresh/reference): {scale:.2f}"
        if normalise else "raw comparison (no machine normalisation)"
    ]
    failures = []
    for name in matched:
        relative = ratios[name] / scale
        verdict = "ok"
        if relative > tolerance:
            verdict = "REGRESSED"
            failures.append(
                f"{name}: {relative:.2f}x the reference "
                f"(fresh {fresh[name] * 1e3:.1f}ms, "
                f"reference {reference[name] * 1e3:.1f}ms, "
                f"tolerance {tolerance:.2f}x)"
            )
        lines.append(
            f"  {name:<44s} {fresh[name] * 1e3:9.1f}ms "
            f"vs {reference[name] * 1e3:9.1f}ms  "
            f"rel {relative:5.2f}x  {verdict}"
        )
    unmatched = sorted(set(reference) - set(fresh))
    if unmatched:
        lines.append(
            "  (not re-run, skipped: " + ", ".join(unmatched) + ")"
        )
    return lines, failures


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--reports-dir", type=pathlib.Path, default=REPORTS_DIR,
        help="directory holding the fresh BENCH_*.json files",
    )
    parser.add_argument(
        "--reference", type=pathlib.Path, default=REFERENCE_PATH,
        help="committed reference baseline file",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="failure threshold as a slowdown factor (default 1.25 = +25%%)",
    )
    parser.add_argument(
        "--raw", action="store_true",
        help="compare absolute seconds (same-machine runs only)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the reference from the fresh reports and exit",
    )
    args = parser.parse_args(argv)

    fresh = load_fresh(args.reports_dir)
    if not fresh:
        print(f"no BENCH_*.json files under {args.reports_dir}; "
              "run the bench suites first", file=sys.stderr)
        return 2

    if args.update:
        write_reference(args.reference, fresh)
        print(f"pinned {len(fresh)} benches into {args.reference}")
        return 0

    if not args.reference.exists():
        print(f"reference file {args.reference} missing "
              "(generate with --update)", file=sys.stderr)
        return 2
    reference = load_reference(args.reference)
    lines, failures = compare(
        fresh, reference, args.tolerance, normalise=not args.raw
    )
    for line in lines:
        print(line)
    if failures:
        print()
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"\nall {len(set(fresh) & set(reference))} matched benches "
          f"within {args.tolerance:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
