"""Substrate micro-benchmarks (real multi-round timings).

The reproduction experiments run thousands of simulated hours in seconds;
these micro-benchmarks keep the hot paths honest (per the hpc-parallel
optimisation workflow: measure, don't guess):

* raw event throughput of the DES kernel,
* full boot-chain resolution (PXE → GRUB4DOS → local disk),
* detector text-parse over a 16-node ``qstat -f`` listing,
* cold vs epoch-cached detector checks over a busy 1024-node cluster,
* utilisation integration over a large job-record set (NumPy path).
"""

import time

import numpy as np

from repro.boot import Firmware, resolve_boot
from repro.boot.chain import BootEnvironment
from repro.boot.grub4dos import GRUB4DOS_ROM, default_menu_path
from repro.core.detector import PbsDetector, parse_qstat_full
from repro.metrics.recorder import JobRecord
from repro.metrics.utilization import utilization_timeline
from repro.netsvc import DhcpServer, TftpServer
from repro.pbs import JobSpec, PbsCommands, PbsServer
from repro.simkernel import Simulator
from repro.storage import Filesystem, FsType
from tests.conftest import CONTROLMENU_FIG3, make_v1_disk


def test_bench_event_throughput(benchmark):
    def run_10k_events():
        sim = Simulator()
        sink = []
        for i in range(10_000):
            sim.schedule(float(i % 100), sink.append, i)
        sim.run()
        return len(sink)

    assert benchmark(run_10k_events) == 10_000


def test_bench_boot_chain_resolution(benchmark):
    disk = make_v1_disk()
    fs = Filesystem(FsType.EXT3)
    fs.write("/tftpboot/grldr", GRUB4DOS_ROM)
    tftp = TftpServer(fs)
    tftp.put(default_menu_path(), CONTROLMENU_FIG3)
    env = BootEnvironment(
        dhcp=DhcpServer(default_bootfile="/grldr"), tftp=tftp
    )
    firmware = Firmware.pxe_first()

    outcome = benchmark(
        resolve_boot, disk, firmware, "02:00:5e:00:00:01", env
    )
    assert outcome.os_name == "linux"


def test_bench_detector_parse(benchmark):
    sim = Simulator()
    server = PbsServer(sim)
    for i in range(1, 17):
        server.create_node(f"enode{i:02d}", np=4)
        server.node_up(f"enode{i:02d}")
    for i in range(16):
        server.qsub(JobSpec(name=f"job{i}", ppn=4, runtime_s=1000.0))
    text = PbsCommands(server).qstat_f()

    jobs = benchmark(parse_qstat_full, text)
    assert len(jobs) == 16


def _busy_pbs_cluster(num_nodes=1024, queued=512):
    """A full 1024-node cluster with a deep backlog: every node runs a
    4-core job and *queued* more wait behind them — the worst realistic
    input for one detector check."""
    sim = Simulator()
    server = PbsServer(sim)
    for i in range(1, num_nodes + 1):
        server.create_node(f"enode{i:04d}", np=4)
        server.node_up(f"enode{i:04d}")
    for i in range(num_nodes + queued):
        server.qsub(JobSpec(name=f"job{i}", ppn=4, runtime_s=100_000.0))
    commands = PbsCommands(server)
    return server, commands, PbsDetector(commands)


def test_bench_detector_check_cold_1024(benchmark):
    _, commands, detector = _busy_pbs_cluster()

    def cold_check():
        # drop both cache layers so every round renders + parses anew
        detector.invalidate()
        commands.invalidate_cache()
        return detector.check()

    report = benchmark(cold_check)
    assert report.running == 1024
    assert report.queued == 512


def test_bench_detector_check_cached_1024(benchmark):
    _, _, detector = _busy_pbs_cluster()
    detector.check()  # warm the epoch cache

    report = benchmark(detector.check)
    assert report.running == 1024
    assert report.queued == 512


def test_cached_detector_speedup_floor():
    """The acceptance gate: an epoch-cache hit must be at least 5x faster
    than a cold render+parse at 1024 nodes (in practice it is orders of
    magnitude faster; 5x keeps the gate robust on noisy CI hosts)."""
    _, commands, detector = _busy_pbs_cluster()

    cold_rounds, warm_rounds = 5, 500
    start = time.perf_counter()  # reprolint: disable=DET001 -- benchmark gate; wall time never enters a simulation
    for _ in range(cold_rounds):
        detector.invalidate()
        commands.invalidate_cache()
        detector.check()
    cold_s = (time.perf_counter() - start) / cold_rounds  # reprolint: disable=DET001 -- benchmark gate; wall time never enters a simulation

    detector.check()  # warm
    start = time.perf_counter()  # reprolint: disable=DET001 -- benchmark gate; wall time never enters a simulation
    for _ in range(warm_rounds):
        detector.check()
    warm_s = (time.perf_counter() - start) / warm_rounds  # reprolint: disable=DET001 -- benchmark gate; wall time never enters a simulation

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    assert speedup >= 5.0, (
        f"epoch cache hit only {speedup:.1f}x faster than cold "
        f"(cold {cold_s * 1e6:.0f}us, warm {warm_s * 1e6:.0f}us)"
    )


def test_bench_utilization_timeline(benchmark):
    rng = np.random.default_rng(0)
    starts = rng.uniform(0, 30_000, size=2_000)
    records = [
        JobRecord(
            name=f"j{i}", scheduler="pbs", cores=4,
            submit_time=float(s), start_time=float(s),
            end_time=float(s + rng.uniform(60, 3600)),
        )
        for i, s in enumerate(starts)
    ]

    timeline = benchmark(utilization_timeline, records, 36_000.0, 60.0)
    assert timeline.shape == (600,)
    assert timeline.max() > 0
