"""Substrate micro-benchmarks (real multi-round timings).

The reproduction experiments run thousands of simulated hours in seconds;
these micro-benchmarks keep the hot paths honest (per the hpc-parallel
optimisation workflow: measure, don't guess):

* raw event throughput of the DES kernel,
* full boot-chain resolution (PXE → GRUB4DOS → local disk),
* detector text-parse over a 16-node ``qstat -f`` listing,
* utilisation integration over a large job-record set (NumPy path).
"""

import numpy as np

from repro.boot import Firmware, resolve_boot
from repro.boot.chain import BootEnvironment
from repro.boot.grub4dos import GRUB4DOS_ROM, default_menu_path
from repro.core.detector import parse_qstat_full
from repro.metrics.recorder import JobRecord
from repro.metrics.utilization import utilization_timeline
from repro.netsvc import DhcpServer, TftpServer
from repro.pbs import JobSpec, PbsCommands, PbsServer
from repro.simkernel import Simulator
from repro.storage import Filesystem, FsType
from tests.conftest import CONTROLMENU_FIG3, make_v1_disk


def test_bench_event_throughput(benchmark):
    def run_10k_events():
        sim = Simulator()
        sink = []
        for i in range(10_000):
            sim.schedule(float(i % 100), sink.append, i)
        sim.run()
        return len(sink)

    assert benchmark(run_10k_events) == 10_000


def test_bench_boot_chain_resolution(benchmark):
    disk = make_v1_disk()
    fs = Filesystem(FsType.EXT3)
    fs.write("/tftpboot/grldr", GRUB4DOS_ROM)
    tftp = TftpServer(fs)
    tftp.put(default_menu_path(), CONTROLMENU_FIG3)
    env = BootEnvironment(
        dhcp=DhcpServer(default_bootfile="/grldr"), tftp=tftp
    )
    firmware = Firmware.pxe_first()

    outcome = benchmark(
        resolve_boot, disk, firmware, "02:00:5e:00:00:01", env
    )
    assert outcome.os_name == "linux"


def test_bench_detector_parse(benchmark):
    sim = Simulator()
    server = PbsServer(sim)
    for i in range(1, 17):
        server.create_node(f"enode{i:02d}", np=4)
        server.node_up(f"enode{i:02d}")
    for i in range(16):
        server.qsub(JobSpec(name=f"job{i}", ppn=4, runtime_s=1000.0))
    text = PbsCommands(server).qstat_f()

    jobs = benchmark(parse_qstat_full, text)
    assert len(jobs) == 16


def test_bench_utilization_timeline(benchmark):
    rng = np.random.default_rng(0)
    starts = rng.uniform(0, 30_000, size=2_000)
    records = [
        JobRecord(
            name=f"j{i}", scheduler="pbs", cores=4,
            submit_time=float(s), start_time=float(s),
            end_time=float(s + rng.uniform(60, 3600)),
        )
        for i, s in enumerate(starts)
    ]

    timeline = benchmark(utilization_timeline, records, 36_000.0, 60.0)
    assert timeline.shape == (600,)
    assert timeline.max() > 0
