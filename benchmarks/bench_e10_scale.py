"""E10 — 64→1024-node scale sweep (the PR's acceptance run).

The headline assertions are the scale-path acceptance criteria: the
1024-node leg must push 10k+ jobs through a 24-simulated-hour horizon in
under a minute of wall time, with every trace invariant holding.
"""

from repro.experiments.e10_scale import run


def test_bench_e10_scale(run_once, publish):
    output = run_once(run, seed=0)
    publish(output)
    h = output.headline
    assert h["max_nodes"] == 1024
    assert h["largest_run_jobs"] >= 10_000
    assert h["largest_run_under_60s"]
    assert h["every_size_completed_jobs"]
    assert h["trace_invariants_ok"]
