"""Deterministic cProfile harness for the scale path.

Runs one E10-style hybrid-v2 scenario (fixed seed, size-proportional
mixed workload) under cProfile and prints the top functions.  The
workload and therefore the *call counts* are bit-reproducible; only the
time columns vary between hosts.  Rows are sorted by (cumulative time,
internal time, name) with the name as the final tiebreak, so the
ordering is stable when timings tie.

Not collected by pytest (the filename does not match ``bench_*.py`` /
``test_*.py``); run it by hand when a bench baseline regresses::

    PYTHONPATH=src python benchmarks/profile_hotspots.py --nodes 256
    PYTHONPATH=src python benchmarks/profile_hotspots.py \
        --nodes 1024 --hours 24 --top 40 --sort tottime
    PYTHONPATH=src python benchmarks/profile_hotspots.py --queue heap

``--queue`` profiles the same scenario on either event-queue
implementation (docs/PERFORMANCE.md) — the heap run is how the calendar
queue's win was measured in the first place.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats

import repro.simkernel.kernel as kernel
from repro.compare import HybridSystem, run_scenario
from repro.core.config import MiddlewareConfig
from repro.experiments.e10_scale import _workload
from repro.simkernel import HOUR, MINUTE


def build_scenario(num_nodes: int, hours: float, seed: int,
                   queue: str = kernel.DEFAULT_QUEUE):
    horizon_s = hours * HOUR
    jobs = _workload(num_nodes, seed, horizon_s)
    # The experiments never thread a queue parameter through; the
    # module-level default is the supported override point.
    kernel.DEFAULT_QUEUE = queue
    system = HybridSystem(
        num_nodes=num_nodes, seed=seed, version=2,
        config=MiddlewareConfig(version=2, check_cycle_s=10 * MINUTE),
    )
    return system, jobs, horizon_s


def profile_run(num_nodes: int, hours: float, seed: int,
                queue: str = kernel.DEFAULT_QUEUE) -> cProfile.Profile:
    system, jobs, horizon_s = build_scenario(num_nodes, hours, seed, queue)
    profiler = cProfile.Profile()
    profiler.enable()
    result = run_scenario(system, jobs, horizon_s)
    profiler.disable()
    print(
        f"nodes={num_nodes} horizon={hours:g}h seed={seed} "
        f"queue={system.sim.queue_kind}: "
        f"{result.submitted} submitted, {result.completed} completed, "
        f"{result.switches} switches, "
        f"{system.sim.events_executed} events, "
        f"{system.sim.compactions} queue compactions"
    )
    return profiler


def print_stats(profiler: cProfile.Profile, top: int, sort: str) -> None:
    stats = pstats.Stats(profiler)
    # (file, line, func) -> (callcount, ncalls, tottime, cumtime, callers)
    if sort == "cumtime":
        key = lambda item: (-item[1][3], -item[1][2], item[0])  # noqa: E731
    else:
        key = lambda item: (-item[1][2], -item[1][3], item[0])  # noqa: E731
    rows = sorted(stats.stats.items(), key=key)[:top]
    print(f"{'ncalls':>10} {'tottime':>9} {'cumtime':>9}  function")
    for (filename, line, func), (_, ncalls, tottime, cumtime, _) in rows:
        where = f"{filename}:{line}({func})"
        print(f"{ncalls:>10} {tottime:>9.3f} {cumtime:>9.3f}  {where}")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=256)
    parser.add_argument("--hours", type=float, default=6.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--top", type=int, default=25)
    parser.add_argument(
        "--sort", choices=("cumtime", "tottime"), default="cumtime"
    )
    parser.add_argument(
        "--queue", choices=("heap", "calendar"),
        default=kernel.DEFAULT_QUEUE,
        help="event-queue implementation to profile (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    profiler = profile_run(args.nodes, args.hours, args.seed, args.queue)
    print_stats(profiler, args.top, args.sort)


if __name__ == "__main__":
    main()
