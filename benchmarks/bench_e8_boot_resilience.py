"""E8 — boot-path resilience fault matrix (ablation extension)."""

from repro.experiments.e8_resilience import run


def test_bench_e8_boot_resilience(run_once, publish):
    output = run_once(run, seed=0)
    publish(output)
    h = output.headline
    assert h["nothing_ever_bricks"]
    assert h["v2_reaches_linux_despite_mbr_rewrite"]
    assert h["v1_loses_linux_after_mbr_rewrite"]
    assert h["v2_degrades_to_disk_without_pxe"]
    assert h["v1_immune_to_network_faults"]
