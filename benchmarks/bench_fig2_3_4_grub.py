"""F2–F4 — GRUB control files + the Figure-4 switch job, end to end."""

from repro.experiments.figures_grub import run


def test_bench_figures_grub(run_once, publish):
    output = run_once(run, seed=0)
    publish(output)
    h = output.headline
    assert h["boot_before"] == "linux"
    assert h["script_ok"]
    assert h["flag_after"] == "windows"
    assert h["os_after_reboot"] == "windows"
    assert h["redirect_uses_configfile"]
    assert h["fig3_titles_present"]
