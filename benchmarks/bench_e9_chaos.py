"""E9 — control-plane chaos sweep (deterministic fault injection)."""

from repro.experiments.e9_chaos import run


def test_bench_e9_chaos(run_once, publish):
    output = run_once(run, seed=0)
    publish(output)
    h = output.headline
    assert h["deterministic"]
    assert h["all_daemons_survive_every_scenario"]
    assert h["every_scenario_finishes_the_workload"]
    assert h["retries_recover_lost_reports"]
    assert h["watchdog_reissued_after_boot_hang"]
    assert h["node_failures_recovered"]
