"""E5 — control-loop reaction time vs the communicator cycle."""

from repro.experiments.e5_control_cycle import run


def test_bench_e5_control_cycle(run_once, publish):
    output = run_once(run, seed=0)
    publish(output)
    h = output.headline
    assert h["wait_grows_with_cycle"]
    assert h["boot_component_cycle_independent"]
    # at the paper's 10-minute default, detection dominates the reboot
    ten = h["cycle_10m"]
    assert ten["detect_min"] > ten["boot_min"] * 0.9
    # a mid-cycle arrival is detected after ~half a cycle
    assert abs(ten["detect_min"] - 5.0) < 1.0
