"""reprolint flow-analysis benchmarks.

The graph-aware pass (import graph + call graph + symbol table + taint
fixpoint over the whole of ``src/repro``) runs in CI on every push, so
its cost is part of every contributor's feedback loop.  These benches
keep it honest:

* one full flow lint of ``src/repro`` (the CI invocation, baseline
  subtraction included) must finish well under the 30 s budget;
* the project/call-graph build is timed separately, so a slowdown can
  be attributed to graph construction vs rule checking.

Baselines land in ``benchmarks/reports/BENCH_*.json`` via the autouse
fixture in ``conftest.py`` (never committed — see tests/test_reports_audit).
"""

import pathlib

from repro.analysis import build_project, lint_paths
from repro.analysis.flow.baseline import load_baseline

REPO_ROOT = pathlib.Path(__file__).parents[1]
SRC = str(REPO_ROOT / "src" / "repro")
BASELINE = REPO_ROOT / "reprolint-baseline.json"

#: hard wall for the whole-repo flow pass (acceptance gate)
FLOW_BUDGET_S = 30.0


def test_bench_full_flow_lint(benchmark):
    entries = load_baseline(BASELINE.read_text(encoding="utf-8"))

    def run():
        return lint_paths([SRC], baseline=entries)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.files_checked > 100
    assert report.findings == [], [f.render() for f in report.findings]
    assert benchmark.stats.stats.mean < FLOW_BUDGET_S


def test_bench_callgraph_build(benchmark):
    def build():
        project = build_project([SRC])
        return len(project.callgraph.edges)

    edges = benchmark.pedantic(build, rounds=1, iterations=1)
    assert edges > 1000
    assert benchmark.stats.stats.mean < FLOW_BUDGET_S
