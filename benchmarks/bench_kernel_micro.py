"""Kernel event-queue micro-benchmarks: heap vs calendar at the seam.

The DES hot loop is schedule/fire/cancel; everything else in the
reproduction rides on it.  These benches time the two ``EventQueue``
implementations on the same pre-built entry set — clustered event times
with heavy ties and a 25% cancellation rate, the shape the simulated
cluster actually produces (communicator cycles, boot timers, heartbeat
beats, walltime guards that rarely fire).

``test_calendar_drain_speedup_floor`` is the acceptance gate for the
calendar queue: the drain/fire phase (the per-event cost every
simulation pays) must be at least 5x faster than the heap's, and the
whole push+cancel+drain cycle at least 2x.  Phases are timed
best-of-three so allocator warm-up noise cannot fail the gate.
"""

import time

import numpy as np

from repro.simkernel import Simulator
from repro.simkernel.calqueue import CalendarQueue
from repro.simkernel.kernel import HeapEventQueue, _Entry

#: Entry count for the phase-timed gate; large enough that heap sift
#: costs dominate constant overheads, small enough for CI.
N_ENTRIES = 200_000

#: Offsets within one 600s "cycle": three zeros give a heavy tie rate.
_PALETTE = (0.0, 0.0, 0.0, 1.0, 5.0, 30.0, 59.0)


def _entries(n=N_ENTRIES, seed=7):
    """Pre-built entries with clustered times and deliberate ties."""
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, len(_PALETTE), size=n)
    return [
        _Entry(600.0 * (seq // 512) + _PALETTE[picks[seq]], seq, int, ())
        for seq in range(n)
    ]


def _run_phases(queue, entries):
    """Time push / cancel / drain at the queue seam; return seconds."""
    push = queue.push
    start = time.perf_counter()  # reprolint: disable=DET001 -- benchmark gate; wall time never enters a simulation
    for entry in entries:
        push(entry)
    pushed = time.perf_counter()  # reprolint: disable=DET001 -- benchmark gate; wall time never enters a simulation
    cancel = queue.cancel
    for entry in entries[::4]:
        cancel(entry)
    cancelled = time.perf_counter()  # reprolint: disable=DET001 -- benchmark gate; wall time never enters a simulation
    fired = []
    queue.drain(fired.append)
    drained = time.perf_counter()  # reprolint: disable=DET001 -- benchmark gate; wall time never enters a simulation
    assert len(fired) == len(entries) - len(entries[::4])
    assert len(queue) == 0
    return pushed - start, cancelled - pushed, drained - cancelled


def _best_of(make_queue, rounds=3):
    """Per-phase minima over *rounds* runs (fresh entries each round)."""
    best = [float("inf")] * 3
    for round_index in range(rounds):
        times = _run_phases(make_queue(), _entries(seed=7 + round_index))
        best = [min(old, new) for old, new in zip(best, times)]
    return best


def test_calendar_drain_speedup_floor():
    """The acceptance gate: calendar drain >=5x heap, full cycle >=2x.

    Measured headroom is ~2x above both floors (drain lands around
    6-10x, the cycle around 3-4x), so the gate survives noisy CI hosts
    without going soft on a real regression.
    """
    heap_push, heap_cancel, heap_drain = _best_of(HeapEventQueue)
    cal_push, cal_cancel, cal_drain = _best_of(CalendarQueue)

    drain_speedup = heap_drain / cal_drain if cal_drain > 0 else float("inf")
    heap_total = heap_push + heap_cancel + heap_drain
    cal_total = cal_push + cal_cancel + cal_drain
    total_speedup = heap_total / cal_total if cal_total > 0 else float("inf")

    assert drain_speedup >= 5.0, (
        f"calendar drain only {drain_speedup:.1f}x faster than heap "
        f"(heap {heap_drain * 1e3:.0f}ms, calendar {cal_drain * 1e3:.0f}ms)"
    )
    assert total_speedup >= 2.0, (
        f"calendar full cycle only {total_speedup:.1f}x faster than heap "
        f"(heap {heap_total * 1e3:.0f}ms, calendar {cal_total * 1e3:.0f}ms)"
    )


def _drain_prepared(make_queue):
    entries = _entries()
    queue = make_queue()
    for entry in entries:
        queue.push(entry)
    for entry in entries[::4]:
        queue.cancel(entry)
    fired = []
    queue.drain(fired.append)
    return len(fired)


def test_bench_queue_drain_heap(benchmark):
    expected = N_ENTRIES - N_ENTRIES // 4
    assert benchmark(_drain_prepared, HeapEventQueue) == expected


def test_bench_queue_drain_calendar(benchmark):
    expected = N_ENTRIES - N_ENTRIES // 4
    assert benchmark(_drain_prepared, CalendarQueue) == expected


def _sim_round_trip(queue_kind, n=50_000):
    """End-to-end Simulator cost: schedule through fire, with cancels."""
    sim = Simulator(queue=queue_kind)
    sink = []
    handles = [
        sim.schedule(600.0 * (i // 512) + _PALETTE[i % len(_PALETTE)],
                     sink.append, i)
        for i in range(n)
    ]
    for handle in handles[::4]:
        sim.cancel(handle)
    sim.run()
    return len(sink)


def test_bench_sim_round_trip_heap(benchmark):
    expected = 50_000 - 50_000 // 4
    assert benchmark(_sim_round_trip, "heap") == expected


def test_bench_sim_round_trip_calendar(benchmark):
    expected = 50_000 - 50_000 // 4
    assert benchmark(_sim_round_trip, "calendar") == expected
