"""E3 — bi-stable vs mono-stable on recurring Windows campaigns."""

from repro.experiments.e3_bistable import run


def test_bench_e3_bistable(run_once, publish):
    output = run_once(run, seed=0)
    publish(output)
    h = output.headline
    assert h["bistable_warms_up"]
    assert h["eager_bistable_beats_monostable_when_warm"]
    assert h["monostable_wastes_more_core_hours"]
    # mono-stable wastes real capacity on per-booking double reboots
    assert h["mono-stable [5]"]["wasted_core_hours"] > 5.0
    # the bi-stable designs waste (almost) nothing: switch reboots are not
    # charged to job occupancy
    assert h["bi-stable (paper FCFS)"]["wasted_core_hours"] < 1.0
