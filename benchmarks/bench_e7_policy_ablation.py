"""E7 — switch-policy ablation (§V future work)."""

from repro.experiments.e7_policy import run


def test_bench_e7_policy_ablation(run_once, publish):
    output = run_once(run, seed=0)
    publish(output)
    h = output.headline
    assert h["eager_cuts_windows_wait_vs_fcfs"]
    assert h["threshold_switches_at_most_fcfs"]
    # eager reacts to backlog -> strictly more switches than stuck-only
    assert h["eager"]["switches"] > h["fcfs (paper)"]["switches"]
    # and better useful utilisation on the oscillating load
    assert h["eager"]["useful_util"] >= h["fcfs (paper)"]["useful_util"]
