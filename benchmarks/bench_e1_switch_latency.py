"""E1 — the ≤5-minute OS switch claim, v1 and v2, both directions."""

from repro.experiments.e1_switch_latency import run


def test_bench_e1_switch_latency(run_once, publish):
    output = run_once(run, seed=0)
    publish(output)
    h = output.headline
    assert h["claim_under_5min"], f"max switch {h['max_switch_minutes']:.2f}min"
    # shape: switching INTO Windows is slower than into Linux, and v2 pays
    # a little PXE overhead on top of v1
    assert h["v1_to_windows_median_min"] > h["v1_to_linux_median_min"]
    assert h["v2_to_windows_median_min"] >= h["v1_to_windows_median_min"]
    # everything lands in the paper's "about 5 mins" band
    assert 2.0 <= h["v1_to_linux_median_min"] <= 5.0
    assert 3.0 <= h["v2_to_windows_median_min"] <= 5.0
