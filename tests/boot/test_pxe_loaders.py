"""GRUB4DOS-over-PXE and PXELINUX loader tests."""

import pytest

from repro.errors import BootError
from repro.boot.grub4dos import (
    GRUB4DOS_ROM,
    Grub4DosPxe,
    default_menu_path,
    mac_menu_name,
    menu_path_for,
)
from repro.boot.pxelinux import (
    PXELINUX_ROM,
    Pxelinux,
    config_path_for,
    parse_pxelinux_config,
)
from repro.netsvc import TftpServer
from repro.storage import Filesystem, FsType
from tests.conftest import CONTROLMENU_FIG3, make_v1_disk

MAC = "00:1e:c9:3a:bb:01"


@pytest.fixture()
def tftp():
    fs = Filesystem(FsType.EXT3, label="headroot")
    fs.write("/tftpboot/grldr", GRUB4DOS_ROM)
    fs.write("/tftpboot/pxelinux.0", PXELINUX_ROM)
    return TftpServer(fs)


def test_mac_menu_name():
    assert mac_menu_name("00:1E:C9:3A:BB:01") == "01-00-1e-c9-3a-bb-01"
    assert menu_path_for(MAC) == "/menu.lst/01-00-1e-c9-3a-bb-01"
    assert default_menu_path() == "/menu.lst/default"


def test_grub4dos_uses_per_mac_menu(tftp):
    disk = make_v1_disk()
    tftp.put(menu_path_for(MAC), CONTROLMENU_FIG3)
    tftp.put(default_menu_path(), CONTROLMENU_FIG3.replace("default 0", "default 1"))
    target = Grub4DosPxe(tftp, disk).boot(MAC)
    assert target.kind == "linux"  # per-MAC menu wins over default


def test_grub4dos_falls_back_to_default_menu(tftp):
    disk = make_v1_disk()
    tftp.put(default_menu_path(), CONTROLMENU_FIG3.replace("default 0", "default 1"))
    target = Grub4DosPxe(tftp, disk).boot(MAC)
    assert target.kind == "chainload"


def test_grub4dos_no_menu_at_all_fails(tftp):
    with pytest.raises(BootError, match="no menu"):
        Grub4DosPxe(tftp, make_v1_disk()).boot(MAC)


def test_grub4dos_menu_can_drive_local_partitions(tftp):
    """The whole point of GRUB4DOS over PXELINUX: the network menu boots a
    *local* partition chosen by the head node."""
    disk = make_v1_disk()
    tftp.put(
        default_menu_path(),
        "default 0\ntitle Win-windows\nrootnoverify (hd0,0)\nchainloader +1\n",
    )
    target = Grub4DosPxe(tftp, disk).boot(MAC)
    assert target.chainload_partition == 1


def test_pxelinux_parse_labels():
    labels = parse_pxelinux_config(
        "DEFAULT install\n"
        "LABEL install\n"
        "KERNEL systemimager/kernel\n"
        "APPEND initrd=systemimager/initrd.img IMAGESERVER=linhead\n"
        "LABEL local\n"
        "LOCALBOOT 0\n"
    )
    assert labels[""].name == "install"
    assert labels["install"].kernel == "systemimager/kernel"
    assert "IMAGESERVER=linhead" in labels["install"].append
    assert labels["local"].localboot


def test_pxelinux_parse_errors():
    with pytest.raises(BootError):
        parse_pxelinux_config("KERNEL orphan\n")
    with pytest.raises(BootError):
        parse_pxelinux_config("DEFAULT missing\nLABEL other\nLOCALBOOT 0\n")
    with pytest.raises(BootError):
        parse_pxelinux_config("")
    with pytest.raises(BootError):
        parse_pxelinux_config("BOGUS directive\n")


def test_pxelinux_localboot_action(tftp):
    tftp.put("/pxelinux.cfg/default", "DEFAULT local\nLABEL local\nLOCALBOOT 0\n")
    action = Pxelinux(tftp).boot(MAC)
    assert action.kind == "localboot"


def test_pxelinux_kernel_action_requires_kernel_on_tftp(tftp):
    tftp.put(
        "/pxelinux.cfg/default",
        "DEFAULT install\nLABEL install\nKERNEL si/kernel\nAPPEND x=1\n",
    )
    with pytest.raises(BootError, match="not on TFTP"):
        Pxelinux(tftp).boot(MAC)
    tftp.put("/si/kernel", "installer-kernel")
    action = Pxelinux(tftp).boot(MAC)
    assert action.kind == "kernel"
    assert action.append == "x=1"


def test_pxelinux_per_mac_config_preferred(tftp):
    tftp.put("/pxelinux.cfg/default", "DEFAULT local\nLABEL local\nLOCALBOOT 0\n")
    tftp.put(
        config_path_for(MAC),
        "DEFAULT install\nLABEL install\nKERNEL si/kernel\n",
    )
    tftp.put("/si/kernel", "k")
    assert Pxelinux(tftp).boot(MAC).kind == "kernel"


def test_pxelinux_no_config_fails(tftp):
    with pytest.raises(BootError, match="no config"):
        Pxelinux(tftp).boot(MAC)
