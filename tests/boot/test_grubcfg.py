"""Unit tests for the menu.lst parser/renderer against Figures 2-3."""

import pytest

from repro.errors import BootError
from repro.boot.grubcfg import (
    parse_device,
    parse_grub_config,
    render_grub_config,
    split_device_path,
)
from tests.conftest import CONTROLMENU_FIG3, MENU_LST_FIG2


def test_parse_device():
    assert parse_device("(hd0,5)") == (0, 5)
    assert parse_device("(hd1,0)") == (1, 0)
    with pytest.raises(BootError):
        parse_device("hd0,5")


def test_split_device_path():
    assert split_device_path("(hd0,1)/grub/splash.xpm.gz") == ((0, 1), "/grub/splash.xpm.gz")
    assert split_device_path("/controlmenu.lst") == (None, "/controlmenu.lst")
    assert split_device_path("(hd0,0)") == ((0, 0), "/")


def test_parse_figure2_menu_lst():
    cfg = parse_grub_config(MENU_LST_FIG2)
    assert cfg.default == 0
    assert cfg.timeout == 5
    assert cfg.hiddenmenu
    assert cfg.splashimage == "(hd0,1)/grub/splash.xpm.gz"
    assert len(cfg.entries) == 1
    entry = cfg.entries[0]
    assert entry.title == "changing to control file"
    assert entry.first("root") == "(hd0,5)"
    assert entry.first("configfile") == "/controlmenu.lst"


def test_parse_figure3_controlmenu():
    cfg = parse_grub_config(CONTROLMENU_FIG3)
    assert cfg.default == 0
    assert cfg.timeout == 10
    assert not cfg.hiddenmenu
    assert [e.title for e in cfg.entries] == [
        "CentOS-5.4_Oscar-5b2-linux",
        "Win_Server_2K8_R2-windows",
    ]
    linux, windows = cfg.entries
    assert linux.first("kernel").startswith("/vmlinuz-2.6.18-164.el5 ro root=/dev/sda7")
    assert linux.first("initrd") == "/sc-initrd-2.6.18-164.el5.gz"
    assert windows.first("rootnoverify") == "(hd0,0)"
    assert windows.first("chainloader") == "+1"


def test_default_space_and_equals_forms():
    assert parse_grub_config("default=3\ntitle t\nchainloader +1\n").default == 3
    assert parse_grub_config("default 3\ntitle t\nchainloader +1\n").default == 3


def test_comments_and_blanks_ignored():
    cfg = parse_grub_config("# comment\n\ndefault=0\n\ntitle x\nchainloader +1\n")
    assert len(cfg.entries) == 1


def test_unknown_global_directive_raises():
    with pytest.raises(BootError):
        parse_grub_config("frobnicate on\n")


def test_unknown_entry_command_raises():
    with pytest.raises(BootError):
        parse_grub_config("title x\nbogus cmd\n")


def test_non_integer_default_raises():
    with pytest.raises(BootError):
        parse_grub_config("default=x\n")


def test_default_entry_selection_and_bounds():
    cfg = parse_grub_config(CONTROLMENU_FIG3)
    assert cfg.default_entry().title == "CentOS-5.4_Oscar-5b2-linux"
    cfg.default = 5
    with pytest.raises(BootError):
        cfg.default_entry()


def test_default_entry_on_empty_config():
    with pytest.raises(BootError):
        parse_grub_config("default=0\n").default_entry()


def test_entry_index_by_title_suffix():
    cfg = parse_grub_config(CONTROLMENU_FIG3)
    assert cfg.entry_index_by_title_suffix("-linux") == 0
    assert cfg.entry_index_by_title_suffix("-windows") == 1
    with pytest.raises(BootError):
        cfg.entry_index_by_title_suffix("-solaris")


def test_render_roundtrip_fig3():
    cfg = parse_grub_config(CONTROLMENU_FIG3)
    text = render_grub_config(cfg, default_style=" ")
    cfg2 = parse_grub_config(text)
    assert cfg2.default == cfg.default
    assert cfg2.timeout == cfg.timeout
    assert [e.title for e in cfg2.entries] == [e.title for e in cfg.entries]
    assert [e.commands for e in cfg2.entries] == [e.commands for e in cfg.entries]


def test_render_roundtrip_fig2_style():
    cfg = parse_grub_config(MENU_LST_FIG2)
    text = render_grub_config(cfg)
    assert text.startswith("default=0\n")
    assert "hiddenmenu" in text
    cfg2 = parse_grub_config(text)
    assert cfg2.hiddenmenu and cfg2.timeout == 5
