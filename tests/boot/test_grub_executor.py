"""GRUB execution semantics on the v1 Eridani disk layout."""

import pytest

from repro.errors import BootError
from repro.boot.grub import GrubExecutor
from tests.conftest import CONTROLMENU_FIG3, MENU_LST_FIG2, make_v1_disk


def test_fig2_redirect_resolves_linux(v1_disk):
    """menu.lst -> configfile on FAT -> default 0 -> CentOS entry."""
    target = GrubExecutor(v1_disk).execute_text(MENU_LST_FIG2)
    assert target.kind == "linux"
    assert target.title == "CentOS-5.4_Oscar-5b2-linux"
    assert target.kernel_partition == 2  # (hd0,1) = /dev/sda2
    assert target.kernel_path == "/vmlinuz-2.6.18-164.el5"
    assert target.root_device == "/dev/sda7"
    assert target.root_partition_number == 7
    assert target.initrd_path == "/sc-initrd-2.6.18-164.el5.gz"
    assert "enforcing=0" in target.kernel_args


def test_fig2_redirect_resolves_windows_when_flag_flipped():
    disk = make_v1_disk(default_os="windows")
    target = GrubExecutor(disk).execute_text(MENU_LST_FIG2)
    assert target.kind == "chainload"
    assert target.title == "Win_Server_2K8_R2-windows"
    assert target.chainload_partition == 1  # (hd0,0) = /dev/sda1


def test_direct_controlmenu_execution(v1_disk):
    target = GrubExecutor(v1_disk).execute_text(CONTROLMENU_FIG3)
    assert target.kind == "linux"


def test_trace_records_the_redirect(v1_disk):
    target = GrubExecutor(v1_disk).execute_text(MENU_LST_FIG2)
    joined = " | ".join(target.trace)
    assert "configfile /controlmenu.lst" in joined
    assert "partition 6" in joined  # (hd0,5)


def test_missing_controlmenu_hangs_boot(v1_disk):
    v1_disk.filesystem(6).delete("/controlmenu.lst")
    with pytest.raises(BootError, match="configfile"):
        GrubExecutor(v1_disk).execute_text(MENU_LST_FIG2)


def test_unformatted_fat_partition_hangs_boot(v1_disk):
    """The v1 mkpart-vs-mkpartfs deployment bug surfaces here."""
    v1_disk.partition(6).filesystem = None
    with pytest.raises(BootError):
        GrubExecutor(v1_disk).execute_text(MENU_LST_FIG2)


def test_missing_kernel_file_fails(v1_disk):
    v1_disk.filesystem(2).delete("/vmlinuz-2.6.18-164.el5")
    with pytest.raises(BootError, match="kernel"):
        GrubExecutor(v1_disk).execute_text(MENU_LST_FIG2)


def test_missing_initrd_fails(v1_disk):
    v1_disk.filesystem(2).delete("/sc-initrd-2.6.18-164.el5.gz")
    with pytest.raises(BootError, match="initrd"):
        GrubExecutor(v1_disk).execute_text(MENU_LST_FIG2)


def test_root_probes_partition_existence(v1_disk):
    text = "title t\nroot (hd0,3)\nchainloader +1\n"
    with pytest.raises(BootError, match="no partition 4"):
        GrubExecutor(v1_disk).execute_text(text)


def test_rootnoverify_skips_probe_but_chainload_still_recorded(v1_disk):
    text = "title t\nrootnoverify (hd0,0)\nchainloader +1\n"
    target = GrubExecutor(v1_disk).execute_text(text)
    assert target.chainload_partition == 1


def test_chainloader_without_root_fails(v1_disk):
    with pytest.raises(BootError, match="no root"):
        GrubExecutor(v1_disk).execute_text("title t\nchainloader +1\n")


def test_chainloader_unsupported_arg(v1_disk):
    with pytest.raises(BootError):
        GrubExecutor(v1_disk).execute_text(
            "title t\nroot (hd0,0)\nchainloader +2\n"
        )


def test_entry_without_payload_fails(v1_disk):
    with pytest.raises(BootError, match="neither kernel nor chainloader"):
        GrubExecutor(v1_disk).execute_text("title t\nroot (hd0,0)\n")


def test_configfile_loop_detected(v1_disk):
    v1_disk.filesystem(6).write(
        "/controlmenu.lst",
        "title loop\nroot (hd0,5)\nconfigfile /controlmenu.lst\n",
    )
    with pytest.raises(BootError, match="loop"):
        GrubExecutor(v1_disk).execute_text(MENU_LST_FIG2)


def test_kernel_with_explicit_device_path(v1_disk):
    text = (
        "title t\nkernel (hd0,1)/vmlinuz-2.6.18-164.el5 ro root=/dev/sda7\n"
    )
    target = GrubExecutor(v1_disk).execute_text(text)
    assert target.kernel_partition == 2


def test_kernel_without_root_set_fails(v1_disk):
    with pytest.raises(BootError, match="no root"):
        GrubExecutor(v1_disk).execute_text(
            "title t\nkernel /vmlinuz ro root=/dev/sda7\n"
        )


def test_net_fetch_used_when_no_local_root(v1_disk):
    fetched = []

    def net_fetch(path):
        fetched.append(path)
        return CONTROLMENU_FIG3

    executor = GrubExecutor(v1_disk, net_fetch=net_fetch)
    target = executor.execute_text("title net\nconfigfile /menu.lst/default\n")
    assert fetched == ["/menu.lst/default"]
    assert target.kind == "linux"
