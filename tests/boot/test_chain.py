"""End-to-end boot-chain resolution: firmware -> loader -> OS."""

import pytest

from repro.errors import BootError
from repro.boot import BootEnvironment, Firmware, resolve_boot
from repro.boot.grub4dos import GRUB4DOS_ROM, default_menu_path
from repro.boot.pxelinux import PXELINUX_ROM
from repro.netsvc import DhcpServer, TftpServer
from repro.storage import Disk, Filesystem, FsType
from repro.storage.diskpart import DiskpartInterpreter, MODIFIED_DISKPART_TXT_V1
from repro.storage.mbr import BootCode
from tests.conftest import CONTROLMENU_FIG3, install_windows_markers, make_v1_disk

MAC = "00:1e:c9:3a:bb:01"


def pxe_env(default_menu=None, bootfile="/grldr"):
    fs = Filesystem(FsType.EXT3, label="headroot")
    fs.write("/tftpboot/grldr", GRUB4DOS_ROM)
    fs.write("/tftpboot/pxelinux.0", PXELINUX_ROM)
    tftp = TftpServer(fs)
    if default_menu is not None:
        tftp.put(default_menu_path(), default_menu)
    dhcp = DhcpServer(next_server="linhead", default_bootfile=bootfile)
    return BootEnvironment(dhcp=dhcp, tftp=tftp)


# -- v1: disk-first, GRUB in MBR -------------------------------------------


def test_v1_boots_linux_by_default(v1_disk):
    outcome = resolve_boot(v1_disk, Firmware.disk_first(), MAC, BootEnvironment())
    assert outcome.os_name == "linux"
    assert outcome.via == "mbr-grub"
    assert outcome.root_partition == 7


def test_v1_boots_windows_after_flag_flip():
    disk = make_v1_disk(default_os="windows")
    outcome = resolve_boot(disk, Firmware.disk_first(), MAC, BootEnvironment())
    assert outcome.os_name == "windows"
    assert outcome.root_partition == 1


def test_v1_windows_reinstall_bricks_linux_boot(v1_disk):
    """§IV.A: Windows reimaging rewrites the MBR and damages GRUB.

    After the Figure-10 diskpart run + Windows install the node boots
    Windows fine, but Linux is gone and GRUB is gone with the MBR."""
    DiskpartInterpreter(v1_disk).run(MODIFIED_DISKPART_TXT_V1)
    install_windows_markers(v1_disk.filesystem(1))
    v1_disk.install_mbr(BootCode(BootCode.WINDOWS))
    outcome = resolve_boot(v1_disk, Firmware.disk_first(), MAC, BootEnvironment())
    assert outcome.os_name == "windows"
    assert outcome.via == "mbr-active"  # GRUB no longer in the chain


def test_bare_disk_does_not_boot():
    disk = Disk(size_mb=250_000)
    with pytest.raises(BootError, match="MBR has no boot code"):
        resolve_boot(disk, Firmware.disk_first(), MAC, BootEnvironment())


def test_windows_mbr_without_active_partition_hangs(v1_disk):
    v1_disk.install_mbr(BootCode(BootCode.WINDOWS))
    v1_disk.partition(1).active = False
    with pytest.raises(BootError, match="no active partition"):
        resolve_boot(v1_disk, Firmware.disk_first(), MAC, BootEnvironment())


def test_grub_mbr_with_deleted_boot_partition_hangs(v1_disk):
    v1_disk.filesystem(2).delete("/grub/menu.lst")
    with pytest.raises(BootError, match="stage2/menu unreadable"):
        resolve_boot(v1_disk, Firmware.disk_first(), MAC, BootEnvironment())


def test_linux_entry_without_installed_root_panics(v1_disk):
    v1_disk.filesystem(7).delete("/etc/fstab")
    with pytest.raises(BootError, match="kernel panic"):
        resolve_boot(v1_disk, Firmware.disk_first(), MAC, BootEnvironment())


# -- v2: PXE-first, GRUB4DOS flag ---------------------------------------------


def test_v2_pxe_boots_flagged_os(v1_disk):
    env = pxe_env(default_menu=CONTROLMENU_FIG3)
    outcome = resolve_boot(v1_disk, Firmware.pxe_first(), MAC, env)
    assert outcome.os_name == "linux"
    assert outcome.via == "pxe-grub4dos"


def test_v2_pxe_boots_windows_when_flag_is_windows(v1_disk):
    env = pxe_env(
        default_menu=CONTROLMENU_FIG3.replace("default 0", "default 1")
    )
    outcome = resolve_boot(v1_disk, Firmware.pxe_first(), MAC, env)
    assert outcome.os_name == "windows"


def test_v2_survives_mbr_damage(v1_disk):
    """The v2 design goal: after Windows clobbers the MBR, PXE boot still
    reaches either OS — 'the MBR information ... does not have to be
    fixed' (§IV.A)."""
    v1_disk.install_mbr(BootCode(BootCode.WINDOWS))  # GRUB destroyed
    env = pxe_env(default_menu=CONTROLMENU_FIG3)
    outcome = resolve_boot(v1_disk, Firmware.pxe_first(), MAC, env)
    assert outcome.os_name == "linux"


def test_pxe_falls_back_to_disk_without_dhcp(v1_disk):
    outcome = resolve_boot(
        v1_disk, Firmware.pxe_first(), MAC, BootEnvironment()
    )
    assert outcome.via == "mbr-grub"
    assert any("no DHCP" in t for t in outcome.trace)


def test_pxe_falls_back_when_tftp_down(v1_disk):
    env = pxe_env(default_menu=CONTROLMENU_FIG3)
    env.tftp.enabled = False
    outcome = resolve_boot(v1_disk, Firmware.pxe_first(), MAC, env)
    assert outcome.via == "mbr-grub"


def test_pxe_falls_back_without_bootfile_option(v1_disk):
    env = pxe_env(default_menu=CONTROLMENU_FIG3, bootfile=None)
    outcome = resolve_boot(v1_disk, Firmware.pxe_first(), MAC, env)
    assert outcome.via == "mbr-grub"


def test_pxelinux_rom_localboot_falls_through(v1_disk):
    env = pxe_env(bootfile="/pxelinux.0")
    env.tftp.put("/pxelinux.cfg/default", "DEFAULT l\nLABEL l\nLOCALBOOT 0\n")
    outcome = resolve_boot(v1_disk, Firmware.pxe_first(), MAC, env)
    assert outcome.via == "mbr-grub"  # PXELINUX quit PXE -> disk


def test_pxelinux_rom_installer_outcome(v1_disk):
    env = pxe_env(bootfile="/pxelinux.0")
    env.tftp.put(
        "/pxelinux.cfg/default",
        "DEFAULT i\nLABEL i\nKERNEL si/kernel\nAPPEND IMAGESERVER=linhead\n",
    )
    env.tftp.put("/si/kernel", "k")
    outcome = resolve_boot(v1_disk, Firmware.pxe_first(), MAC, env)
    assert outcome.os_name == "installer"
    assert "IMAGESERVER=linhead" in outcome.installer_args


def test_unknown_rom_contents_raise(v1_disk):
    env = pxe_env()
    env.tftp.put("/grldr", "garbage")
    with pytest.raises(BootError, match="unknown PXE ROM"):
        resolve_boot(v1_disk, Firmware.pxe_first(), MAC, env)


def test_chainload_to_unbootable_partition_fails(v1_disk):
    v1_disk.filesystem(1).delete("/bootmgr")
    disk_cfg = make_v1_disk(default_os="windows")
    env = pxe_env(
        default_menu=CONTROLMENU_FIG3.replace("default 0", "default 1")
    )
    with pytest.raises(BootError, match="not bootable"):
        resolve_boot(v1_disk, Firmware.pxe_first(), MAC, env)


def test_firmware_validation():
    import repro.boot.firmware as fw
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        fw.Firmware(boot_order=())
    with pytest.raises(ConfigurationError):
        fw.Firmware(boot_order=("floppy",))
    assert fw.Firmware.pxe_first().boot_order == ("pxe", "disk")
