"""Volume boot record + active-partition MBR path."""

import pytest

from repro.boot.windowsboot import (
    WINDOWS_BOOT_MARKER,
    boot_active_partition,
    vbr_bootable,
)
from repro.errors import BootError
from repro.storage import Disk, FsType


def make_disk():
    disk = Disk(size_mb=250_000)
    disk.create_partition(150_000).format(FsType.NTFS, label="Node")
    disk.create_partition(1_000).format(FsType.EXT3)
    return disk


def test_vbr_needs_ntfs_and_bootmgr():
    disk = make_disk()
    ntfs = disk.partition(1)
    assert not vbr_bootable(ntfs)  # formatted but no bootmgr
    ntfs.filesystem.write(WINDOWS_BOOT_MARKER, "x")
    assert vbr_bootable(ntfs)
    assert not vbr_bootable(disk.partition(2))  # ext3 never


def test_vbr_unformatted_partition():
    disk = Disk(size_mb=1000)
    part = disk.create_partition(500)
    assert not vbr_bootable(part)


def test_boot_active_partition_success():
    disk = make_disk()
    disk.filesystem(1).write(WINDOWS_BOOT_MARKER, "x")
    disk.set_active(1)
    assert boot_active_partition(disk).number == 1


def test_boot_active_no_active_raises():
    with pytest.raises(BootError, match="no active partition"):
        boot_active_partition(make_disk())


def test_boot_active_unbootable_vbr_raises():
    disk = make_disk()
    disk.set_active(2)  # ext3: no VBR
    with pytest.raises(BootError, match="no bootable VBR"):
        boot_active_partition(disk)
