"""Heartbeat monitor: thresholds, planned-downtime immunity, recovery.

The unit layer drives the monitor against stub nodes (only ``.name`` and
``.state`` matter to the poll loop); the integration test at the bottom
runs the full hybrid stack through a crash -> fence -> requeue -> rejoin
cycle.
"""

from types import SimpleNamespace

import pytest

from repro.core import MiddlewareConfig, build_hybrid_cluster
from repro.errors import ConfigurationError
from repro.hardware.node import NodeState
from repro.health import HealthState, HeartbeatMonitor
from repro.pbs.job import JobState
from repro.simkernel import HOUR, MINUTE, Simulator


def stub_node(name="n1", state=NodeState.UP):
    return SimpleNamespace(name=name, state=state)


@pytest.fixture()
def sim():
    return Simulator()


@pytest.fixture()
def monitor(sim):
    return HeartbeatMonitor(sim, beat_s=60.0, suspect_misses=2, fence_misses=5)


def test_threshold_validation(sim):
    with pytest.raises(ConfigurationError):
        HeartbeatMonitor(sim, beat_s=0.0)
    with pytest.raises(ConfigurationError):
        HeartbeatMonitor(sim, suspect_misses=0)
    with pytest.raises(ConfigurationError):
        HeartbeatMonitor(sim, suspect_misses=5, fence_misses=5)


def test_start_twice_rejected(sim, monitor):
    monitor.start()
    with pytest.raises(ConfigurationError):
        monitor.start()


def test_up_node_is_never_suspected(sim, monitor):
    node = stub_node()
    monitor.watch(node)
    monitor.agent_up(node.name)
    monitor.start()
    sim.run(until=20 * MINUTE)
    health = monitor.health(node.name)
    assert health.state is HealthState.HEALTHY
    assert health.misses == 0
    assert monitor.fences == monitor.suspects == 0


def test_unwatched_beats_are_not_expected(sim, monitor):
    # registered but no agent ever came up (node still booting): dark is fine
    node = stub_node(state=NodeState.OFF)
    monitor.watch(node)
    monitor.start()
    sim.run(until=20 * MINUTE)
    assert monitor.health(node.name).state is HealthState.HEALTHY
    assert monitor.fences == 0


def test_silent_death_escalates_suspect_then_fenced(sim, monitor):
    node = stub_node()
    monitor.watch(node)
    monitor.agent_up(node.name)
    fenced = []
    monitor.on_fence.append(fenced.append)
    monitor.start()

    node.state = NodeState.OFF  # silent crash: no agent_down fires
    sim.run(until=2 * 60.0 + 1)
    assert monitor.health(node.name).state is HealthState.SUSPECT
    assert monitor.suspects == 1 and monitor.fences == 0

    sim.run(until=5 * 60.0 + 1)
    health = monitor.health(node.name)
    assert health.state is HealthState.FENCED
    assert health.fence_count == 1
    assert monitor.fences == 1
    assert fenced == [node.name]
    # staying dark does not fence again
    sim.run(until=30 * MINUTE)
    assert monitor.fences == 1


def test_orderly_stop_is_planned_downtime(sim, monitor):
    node = stub_node()
    monitor.watch(node)
    monitor.agent_up(node.name)
    monitor.start()
    sim.run(until=3 * 60.0)
    # orderly shutdown (reboot / OS switch): the service hook deregisters
    monitor.agent_down(node.name)
    node.state = NodeState.BOOTING
    sim.run(until=HOUR)
    assert monitor.health(node.name).state is HealthState.HEALTHY
    assert monitor.fences == 0


def test_suspect_that_beats_again_recovers_silently(sim, monitor):
    node = stub_node()
    monitor.watch(node)
    monitor.agent_up(node.name)
    monitor.start()
    node.state = NodeState.BOOTING
    sim.run(until=2 * 60.0 + 1)
    assert monitor.health(node.name).state is HealthState.SUSPECT
    node.state = NodeState.UP
    sim.run(until=4 * 60.0)
    health = monitor.health(node.name)
    assert health.state is HealthState.HEALTHY and health.misses == 0
    assert monitor.recoveries == 0  # only fences count as recoveries


def test_fenced_node_recovers_on_agent_return(sim, monitor):
    node = stub_node()
    monitor.watch(node)
    monitor.agent_up(node.name)
    recovered = []
    monitor.on_recover.append(recovered.append)
    monitor.start()
    node.state = NodeState.OFF
    sim.run(until=6 * 60.0)
    assert monitor.health(node.name).state is HealthState.FENCED

    node.state = NodeState.UP
    monitor.agent_up(node.name)  # the reboot re-registers the agent
    health = monitor.health(node.name)
    assert health.state is HealthState.HEALTHY
    assert health.recovered_at == sim.now
    assert monitor.recoveries == 1
    assert recovered == [node.name]
    assert monitor.fenced_nodes() == []


def test_watch_is_idempotent(sim, monitor):
    node = stub_node()
    monitor.watch(node)
    monitor.agent_up(node.name)
    monitor.watch(node)  # must not reset the health record
    assert monitor.health(node.name).expected


# -- full-stack integration ---------------------------------------------------


def test_crash_fence_requeue_rejoin_end_to_end():
    """A hard crash mid-job: fenced in ~5 min, the job is requeued, the
    repowered node rejoins and the job completes on its second run."""
    hybrid = build_hybrid_cluster(
        num_nodes=2, seed=7, version=2,
        config=MiddlewareConfig(version=2, check_cycle_s=5 * MINUTE),
    )
    hybrid.deploy()
    hybrid.wait_for_nodes()
    sim = hybrid.sim
    t0 = sim.now
    jobid = hybrid.submit_linux_job(
        "victim", nodes=2, ppn=4, runtime_s=30 * MINUTE
    )
    job = hybrid.pbs.jobs[jobid]
    assert job.state is JobState.RUNNING

    node = hybrid.cluster.compute_nodes[0]
    sim.run(until=t0 + MINUTE)
    assert node.crash()
    assert node.state is NodeState.OFF

    sim.run(until=t0 + 10 * MINUTE)
    health = hybrid.health.health(node.name)
    assert health.state is HealthState.FENCED
    # the job needed both nodes, so the fence requeued it
    assert job.state is JobState.QUEUED
    assert job.restarts == 1
    assert hybrid.pbs.requeues == 1

    node.power_on()
    sim.run(until=t0 + 2 * HOUR)
    assert health.state is HealthState.HEALTHY
    assert hybrid.health.recoveries == 1
    assert job.state is JobState.COMPLETED and job.exit_status == 0
