"""PBS node-failure recovery: fence, requeue, checkpoint, cordon.

The server-side half of the resilience layer, exercised without the
middleware: fences arrive as direct ``fence_node`` calls (in production
the heartbeat monitor makes them).
"""

from types import SimpleNamespace

import pytest

from repro.pbs import JobSpec, JobState, PbsServer
from repro.pbs.nodes import PbsNodeState
from repro.pbs.server import KILLED_EXIT_STATUS, WALLTIME_EXIT_STATUS
from repro.simkernel import Simulator


@pytest.fixture()
def sim():
    return Simulator()


@pytest.fixture()
def server(sim):
    srv = PbsServer(sim)
    for i in range(1, 5):
        srv.create_node(f"enode{i:02d}", np=4)
        srv.node_up(f"enode{i:02d}")
    return srv


def spec(name="job", nodes=1, ppn=4, runtime=100.0, **kw):
    return JobSpec(name=name, nodes=nodes, ppn=ppn, runtime_s=runtime, **kw)


def host_of(job):
    return job.exec_slots[0][0].split(".")[0]


def test_fence_requeues_and_job_completes_elsewhere(sim, server):
    jobid = server.qsub(spec(runtime=100.0))
    job = server.jobs[jobid]
    victim_host = host_of(job)
    sim.run(until=30.0)

    out = server.fence_node(victim_host)
    assert out == {"requeued": [jobid], "failed": []}
    # rescheduled instantly: three other nodes are free
    assert job.state is JobState.RUNNING
    assert host_of(job) != victim_host
    assert job.restarts == 1
    assert job.lost_work_s == 30.0  # no checkpointing: all progress lost
    assert server.node(victim_host).state is PbsNodeState.DOWN
    assert server.requeues == 1

    sim.run()
    assert job.state is JobState.COMPLETED and job.exit_status == 0
    # full rerun from scratch: 30s lost + 100s clean run
    assert job.end_time == 130.0


def test_non_rerunnable_job_fails_terminally(sim, server):
    """Satellite regression: `#PBS -r n` jobs must never be requeued."""
    jobid = server.qsub(spec(runtime=100.0, rerunnable=False))
    job = server.jobs[jobid]
    sim.run(until=10.0)
    out = server.fence_node(host_of(job))
    assert out == {"requeued": [], "failed": [jobid]}
    assert job.state is JobState.COMPLETED
    assert job.exit_status == KILLED_EXIT_STATUS
    assert job.restarts == 0
    assert server.jobs_failed_on_fence == 1
    sim.run()
    assert job.state is JobState.COMPLETED  # nothing resurrects it


def test_retry_budget_exhaustion_fails_the_job(sim, server):
    server.max_job_restarts = 1
    jobid = server.qsub(spec(runtime=100.0))
    job = server.jobs[jobid]
    sim.run(until=10.0)
    assert server.fence_node(host_of(job))["requeued"] == [jobid]
    sim.run(until=20.0)
    assert job.state is JobState.RUNNING
    out = server.fence_node(host_of(job))
    assert out["failed"] == [jobid]
    assert job.exit_status == KILLED_EXIT_STATUS
    assert job.restarts == 1


def test_checkpoint_interval_credits_durable_work(sim, server):
    server.checkpoint_interval_s = 30.0
    jobid = server.qsub(spec(runtime=100.0))
    job = server.jobs[jobid]
    sim.run(until=70.0)
    server.fence_node(host_of(job))
    # floor(70/30)*30 = 60s durable, 10s lost
    assert job.checkpointed_s == 60.0
    assert job.lost_work_s == 10.0
    sim.run()
    assert job.state is JobState.COMPLETED and job.exit_status == 0
    # second run only needs the remaining 40s: 70 + 40
    assert job.end_time == 110.0


def test_checkpoint_credit_capped_at_runtime(sim, server):
    server.checkpoint_interval_s = 30.0
    jobid = server.qsub(spec(runtime=100.0))
    job = server.jobs[jobid]
    sim.run(until=70.0)
    server.fence_node(host_of(job))
    sim.run(until=80.0)
    assert job.state is JobState.RUNNING
    # 5s into the rerun: nothing new checkpointed, total credit still 60
    server.fence_node(host_of(job))
    assert job.checkpointed_s == 60.0
    sim.run()
    assert job.state is JobState.COMPLETED and job.exit_status == 0


def test_requeue_charges_walltime_and_cancels_old_timer(sim, server):
    """The first run's walltime timer must die with the eviction, and
    elapsed time still counts against the budget on restart."""
    jobid = server.qsub(spec(runtime=100.0, walltime_s=120.0))
    job = server.jobs[jobid]
    sim.run(until=50.0)
    server.fence_node(host_of(job))
    assert job.walltime_used_s == 50.0
    sim.run()
    # remaining budget 70s < 100s rerun: killed at its walltime limit —
    # and at 50 + 70 = 120, not at the stale first-run deadline
    assert job.exit_status == WALLTIME_EXIT_STATUS
    assert job.end_time == 120.0


def test_fast_rejoin_recovers_stranded_jobs(sim, server):
    """A node that crashes and reboots before the fence: its mom reports
    in with old jobs still booked; node_up must reconcile them."""
    jobid = server.qsub(spec(runtime=100.0))
    job = server.jobs[jobid]
    victim_host = host_of(job)
    sim.run(until=10.0)
    # kill the runner the way the crash hook does, then rejoin directly
    server.node_crashed(victim_host)
    assert job.interrupted_at == 10.0
    sim.run(until=40.0)
    server.node_up(victim_host)
    assert job.restarts == 1
    assert job.state is JobState.RUNNING
    # lost work is charged to the crash instant, not the rejoin instant
    assert job.lost_work_s == 10.0
    sim.run()
    assert job.state is JobState.COMPLETED and job.exit_status == 0


def test_cordon_drains_without_killing(sim, server):
    jobid = server.qsub(spec(runtime=100.0))
    job = server.jobs[jobid]
    host = host_of(job)
    server.cordon_node(host)
    assert server.node(host).state is PbsNodeState.OFFLINE
    assert job.state is JobState.RUNNING  # running work is untouched
    # a fresh 4-core job cannot land on the cordoned node
    other = server.jobs[server.qsub(spec(name="j2", nodes=4, ppn=4))]
    assert other.state is JobState.QUEUED
    server.uncordon_node(host)
    sim.run()
    assert job.state is JobState.COMPLETED
    assert other.state is JobState.COMPLETED


def test_job_on_silently_dead_mom_parks_until_fenced(sim):
    """Zombie-START guard: a job placed onto a node whose OS died
    silently must not fake progress — it parks until the fence."""
    server = PbsServer(sim)
    server.create_node("enode01", np=4)
    dead_os = SimpleNamespace(running=False)
    server.node_up("enode01", os_instance=dead_os)
    jobid = server.qsub(spec(runtime=100.0))
    job = server.jobs[jobid]
    assert job.state is JobState.RUNNING
    sim.run(until=1000.0)
    assert job.state is JobState.RUNNING  # parked, not completing
    out = server.fence_node("enode01")
    assert out["requeued"] == [jobid]
    assert job.state is JobState.QUEUED  # no nodes left: waits
    sim.run()
    assert job.state is JobState.QUEUED
