"""Walltime enforcement."""

import pytest

from repro.pbs import JobSpec, JobState, PbsServer
from repro.pbs.server import KILLED_EXIT_STATUS, WALLTIME_EXIT_STATUS
from repro.simkernel import Simulator


@pytest.fixture()
def server():
    sim = Simulator()
    srv = PbsServer(sim)
    srv.create_node("enode01", np=4)
    srv.node_up("enode01")
    return srv


def test_job_within_walltime_completes_normally(server):
    jobid = server.qsub(
        JobSpec(name="ok", ppn=4, runtime_s=100.0, walltime_s=200.0)
    )
    server.sim.run()
    job = server.jobs[jobid]
    assert job.exit_status == 0
    assert job.end_time == 100.0


def test_job_exceeding_walltime_is_killed(server):
    jobid = server.qsub(
        JobSpec(name="hog", ppn=4, runtime_s=1000.0, walltime_s=300.0)
    )
    server.sim.run()
    job = server.jobs[jobid]
    assert job.state is JobState.COMPLETED
    assert job.exit_status == WALLTIME_EXIT_STATUS
    assert job.end_time == 300.0
    assert server.free_cores() == 4  # cores released


def test_walltime_kill_frees_cores_for_next_job(server):
    server.qsub(JobSpec(name="hog", ppn=4, runtime_s=9999.0, walltime_s=60.0))
    nxt = server.qsub(JobSpec(name="next", ppn=4, runtime_s=10.0))
    server.sim.run()
    job = server.jobs[nxt]
    assert job.start_time == 60.0
    assert job.exit_status == 0


def test_qdel_still_reports_killed_not_walltime(server):
    jobid = server.qsub(
        JobSpec(name="victim", ppn=4, runtime_s=1000.0, walltime_s=2000.0)
    )
    server.sim.run(until=10.0)
    server.qdel(jobid)
    server.sim.run(until=20.0)
    assert server.jobs[jobid].exit_status == KILLED_EXIT_STATUS


def test_no_walltime_means_no_limit(server):
    jobid = server.qsub(JobSpec(name="free", ppn=4, runtime_s=100_000.0))
    server.sim.run()
    assert server.jobs[jobid].exit_status == 0


def test_walltime_rendered_in_qstat(server):
    from repro.pbs import PbsCommands

    server.qsub(JobSpec(name="w", ppn=1, runtime_s=10.0, walltime_s=5415.0))
    text = PbsCommands(server).qstat_f()
    assert "Resource_List.walltime = 01:30:15" in text


def test_walltime_parsed_from_script(server):
    jobid = server.qsub(
        "#PBS -l nodes=1:ppn=1,walltime=00:00:30\nsleep 99\n"
    )
    assert server.jobs[jobid].walltime_s == 30.0
