"""pbsnodes / qstat -f output fidelity (Figures 7-8)."""

import re

import pytest

from repro.pbs import JobSpec, PbsCommands, PbsServer
from repro.pbs.formats import render_time, render_unix_time
from repro.simkernel import Simulator


@pytest.fixture()
def sim():
    return Simulator()


@pytest.fixture()
def server(sim):
    srv = PbsServer(sim, first_jobid=1185)
    for i in range(1, 17):
        srv.create_node(f"enode{i:02d}", np=4)
        srv.node_up(f"enode{i:02d}")
    return srv


@pytest.fixture()
def pbs(server):
    return PbsCommands(server)


def test_render_time_matches_torque_style():
    text = render_time(0.0)
    assert re.fullmatch(r"\w{3} \w{3} \d{2} \d{2}:\d{2}:\d{2} 2010", text)
    assert render_time(0.0) == "Fri Apr 16 08:00:00 2010"


def test_render_unix_time_monotonic():
    assert render_unix_time(10.0) == render_unix_time(0.0) + 10


def test_pbsnodes_free_node_stanza(pbs):
    text = pbs.pbsnodes()
    assert "enode01.eridani.qgg.hud.ac.uk" in text
    stanza = text.split("\n\n")[0]
    assert "     state = free" in stanza
    assert "     np = 4" in stanza
    assert "     properties = all" in stanza
    assert "     ntype = cluster" in stanza
    assert "opsys=linux" in stanza
    assert "uname=Linux enode01.eridani.qgg.hud.ac.uk 2.6.18-164.el5" in stanza
    assert "ncpus=4" in stanza
    assert re.search(r"rectime=\d+", stanza)


def test_pbsnodes_shows_all_16_nodes(pbs):
    text = pbs.pbsnodes()
    assert text.count("ntype = cluster") == 16


def test_pbsnodes_down_node_has_no_status(pbs, server):
    server.node_down("enode01")
    stanza = pbs.pbsnodes().split("\n\n")[0]
    assert "state = down" in stanza
    assert "status =" not in stanza


def test_pbsnodes_busy_node_lists_jobs(pbs, server, sim):
    jobid = server.qsub(JobSpec(name="sleep", nodes=1, ppn=4, runtime_s=100.0))
    text = pbs.pbsnodes()
    busy = [s for s in text.split("\n\n") if "job-exclusive" in s]
    assert len(busy) == 1
    assert f"3/{jobid}" in busy[0]


def test_qstat_f_figure8_fields(pbs, server, sim):
    server.qsub(
        JobSpec(name="release_1_node", nodes=1, ppn=4, runtime_s=100.0,
                join_oe=True, output_path="reboot_log.out"),
        owner="sliang",
    )
    text = pbs.qstat_f()
    assert text.startswith("Job Id: 1185.eridani.qgg.hud.ac.uk")
    assert "    Job_Name = release_1_node" in text
    assert "    Job_Owner = sliang@eridani.qgg.hud.ac.uk" in text
    assert "    job_state = R" in text
    assert "    queue = default" in text
    assert "    server = eridani.qgg.hud.ac.uk" in text
    assert "    Resource_List.nodes = 1:ppn=4" in text
    assert re.search(r"    qtime = \w{3} \w{3} \d{2}", text)
    assert "PBS_O_HOME=/home/sliang" in text
    assert "PBS_O_LANG=en_US.UTF-8" in text
    # exec_host in Figure-8 shape: host/3+host/2+host/1+host/0
    m = re.search(r"    exec_host = (\S+)", text)
    host = "enode16.eridani.qgg.hud.ac.uk"
    assert m.group(1) == f"{host}/3+{host}/2+{host}/1+{host}/0"


def test_qstat_f_hides_completed_by_default(pbs, server, sim):
    server.qsub(JobSpec(name="quick", runtime_s=1.0))
    sim.run()
    assert pbs.qstat_f() == ""
    assert "exit_status = 0" in pbs.qstat_f(include_completed=True)


def test_qstat_f_multiple_jobs_sorted(pbs, server):
    server.qsub(JobSpec(name="a", nodes=16, ppn=4, runtime_s=10.0))
    server.qsub(JobSpec(name="b", runtime_s=10.0))
    text = pbs.qstat_f()
    assert text.index("Job Id: 1185") < text.index("Job Id: 1186")
    assert "    job_state = Q" in text  # second job queued


def test_qstat_brief_table(pbs, server):
    server.qsub(JobSpec(name="sleep", runtime_s=50.0))
    text = pbs.qstat()
    assert "Job id" in text and "Queue" in text
    assert "sleep" in text and " R " in text


def test_qstat_brief_empty(pbs):
    assert pbs.qstat() == ""


def test_qsub_via_commands_facade(pbs, sim, server):
    jobid = pbs.qsub("#PBS -N from_script\n#PBS -l nodes=1:ppn=2\necho hi\n")
    job = server.jobs[jobid]
    assert job.name == "from_script"
    assert job.ppn == 2
