"""PBS server: queueing, FIFO scheduling, node lifecycle."""

import pytest

from repro.errors import SchedulerError
from repro.pbs import JobSpec, JobState, PbsServer
from repro.pbs.nodes import PbsNodeState
from repro.pbs.server import KILLED_EXIT_STATUS
from repro.simkernel import Simulator


@pytest.fixture()
def sim():
    return Simulator()


@pytest.fixture()
def server(sim):
    srv = PbsServer(sim)
    for i in range(1, 5):
        srv.create_node(f"enode{i:02d}", np=4)
        srv.node_up(f"enode{i:02d}")
    return srv


def spec(name="job", nodes=1, ppn=4, runtime=100.0, **kw):
    return JobSpec(name=name, nodes=nodes, ppn=ppn, runtime_s=runtime, **kw)


def test_jobid_format_and_sequence(server):
    j1 = server.qsub(spec())
    j2 = server.qsub(spec())
    assert j1.endswith(".eridani.qgg.hud.ac.uk")
    assert int(j2.split(".")[0]) == int(j1.split(".")[0]) + 1


def test_owner_format(server):
    jobid = server.qsub(spec(), owner="sliang")
    assert server.jobs[jobid].owner == "sliang@eridani.qgg.hud.ac.uk"


def test_job_runs_and_completes(sim, server):
    jobid = server.qsub(spec(runtime=50.0))
    job = server.jobs[jobid]
    assert job.state is JobState.RUNNING  # started immediately, nodes free
    sim.run()
    assert job.state is JobState.COMPLETED
    assert job.exit_status == 0
    assert job.end_time == 50.0
    assert job.wait_time_s == 0.0
    assert job.turnaround_s == 50.0


def test_allocation_prefers_highest_node(server):
    jobid = server.qsub(spec())
    job = server.jobs[jobid]
    hosts = {h for h, _ in job.exec_slots}
    assert hosts == {"enode04.eridani.qgg.hud.ac.uk"}


def test_exec_host_cores_descend(server):
    job = server.jobs[server.qsub(spec(ppn=4))]
    cores = [c for _, c in job.exec_slots]
    assert cores == [3, 2, 1, 0]  # Figure 8 order


def test_fifo_queueing_when_full(sim, server):
    ids = [server.qsub(spec(name=f"j{i}", runtime=100.0)) for i in range(6)]
    states = [server.jobs[j].state for j in ids]
    assert states[:4] == [JobState.RUNNING] * 4
    assert states[4:] == [JobState.QUEUED] * 2
    sim.run(until=101.0)
    assert server.jobs[ids[4]].state is JobState.RUNNING
    sim.run()
    assert all(server.jobs[j].state is JobState.COMPLETED for j in ids)


def test_head_of_line_blocking_no_backfill(sim, server):
    """Strict FCFS: a big job at the head blocks small jobs behind it."""
    server.qsub(spec(name="fill1", nodes=4, ppn=4, runtime=100.0))
    big = server.qsub(spec(name="big", nodes=4, ppn=4, runtime=10.0))
    small = server.qsub(spec(name="small", nodes=1, ppn=1, runtime=10.0))
    assert server.jobs[big].state is JobState.QUEUED
    assert server.jobs[small].state is JobState.QUEUED  # would fit, but FCFS
    sim.run(until=50.0)
    assert server.jobs[small].state is JobState.QUEUED


def test_multi_node_job_spans_nodes(server):
    job = server.jobs[server.qsub(spec(nodes=2, ppn=4))]
    hosts = {h for h, _ in job.exec_slots}
    assert len(hosts) == 2
    assert len(job.exec_slots) == 8


def test_core_sharing_on_one_node(server):
    j1 = server.jobs[server.qsub(spec(ppn=2))]
    j2 = server.jobs[server.qsub(spec(ppn=2))]
    assert j1.state is JobState.RUNNING and j2.state is JobState.RUNNING
    # both land on enode04 (highest first, still has 2 free cores)
    assert {h for h, _ in j1.exec_slots} == {h for h, _ in j2.exec_slots}


def test_node_down_kills_jobs(sim, server):
    jobid = server.qsub(spec(runtime=1000.0))
    job = server.jobs[jobid]
    host = job.exec_slots[0][0]
    sim.run(until=10.0)
    server.node_down(host)
    sim.run(until=11.0)
    assert job.state is JobState.COMPLETED
    assert job.exit_status == KILLED_EXIT_STATUS
    assert server.node(host).state is PbsNodeState.DOWN


def test_node_down_releases_waiting_work_elsewhere(sim, server):
    ids = [server.qsub(spec(name=f"j{i}", runtime=100.0)) for i in range(5)]
    victim_host = server.jobs[ids[0]].exec_slots[0][0]
    sim.run(until=1.0)
    server.node_down(victim_host)
    sim.run(until=2.0)
    # queued 5th job cannot start (only 3 nodes up, all busy)
    assert server.jobs[ids[4]].state is JobState.QUEUED
    sim.run()
    assert server.jobs[ids[4]].state is JobState.COMPLETED


def test_node_up_triggers_scheduling(sim, server):
    for host in list(server.nodes):
        server.node_down(host)
    jobid = server.qsub(spec(runtime=10.0))
    assert server.jobs[jobid].state is JobState.QUEUED
    server.node_up("enode01")
    assert server.jobs[jobid].state is JobState.RUNNING


def test_qdel_queued_job(sim, server):
    for i in range(4):
        server.qsub(spec(name=f"fill{i}", runtime=100.0))
    victim = server.qsub(spec(name="victim", runtime=100.0))
    server.qdel(victim)
    assert server.jobs[victim].state is JobState.COMPLETED
    assert server.jobs[victim].exit_status == KILLED_EXIT_STATUS
    assert victim not in server.queue_order


def test_qdel_running_job(sim, server):
    jobid = server.qsub(spec(runtime=1000.0))
    sim.run(until=5.0)
    server.qdel(jobid)
    sim.run(until=6.0)
    assert server.jobs[jobid].state is JobState.COMPLETED
    assert server.free_cores() == 16


def test_qdel_completed_job_rejected(sim, server):
    jobid = server.qsub(spec(runtime=1.0))
    sim.run()
    with pytest.raises(SchedulerError):
        server.qdel(jobid)


def test_ppn_larger_than_any_node_rejected(server):
    with pytest.raises(SchedulerError):
        server.qsub(spec(ppn=8))


def test_bad_resource_request_rejected(server):
    with pytest.raises(SchedulerError):
        server.qsub(JobSpec(nodes=0, ppn=1))


def test_duplicate_node_rejected(server):
    with pytest.raises(SchedulerError):
        server.create_node("enode01", np=4)


def test_unknown_node_rejected(server):
    with pytest.raises(SchedulerError):
        server.node_up("enode99")


def test_observers_see_lifecycle(sim, server):
    events = []
    server.observers.append(lambda ev, job: events.append((ev, job.name)))
    server.qsub(spec(name="watched", runtime=5.0))
    sim.run()
    assert events == [
        ("submitted", "watched"),
        ("started", "watched"),
        ("finished", "watched"),
    ]


def test_on_complete_callback(sim, server):
    done = []
    jobid = server.qsub(spec(runtime=5.0))
    server.jobs[jobid].on_complete = lambda job: done.append(job.jobid)
    sim.run()
    assert done == [jobid]


def test_free_cores_accounting(sim, server):
    assert server.free_cores() == 16
    server.qsub(spec(ppn=3, runtime=10.0))
    assert server.free_cores() == 13
    sim.run()
    assert server.free_cores() == 16
