"""qhold / qrls semantics."""

import pytest

from repro.errors import SchedulerError
from repro.pbs import JobSpec, JobState, PbsCommands, PbsServer
from repro.simkernel import Simulator


@pytest.fixture()
def server():
    sim = Simulator()
    srv = PbsServer(sim)
    srv.create_node("enode01", np=4)
    srv.node_up("enode01")
    return srv


def queued_spec(name, runtime=100.0):
    return JobSpec(name=name, ppn=4, runtime_s=runtime)


def test_hold_skips_scheduling_until_release(server):
    filler = server.qsub(queued_spec("filler"))
    held = server.qsub(queued_spec("held"))
    server.qhold(held)
    server.sim.run(until=150.0)
    # filler finished at t=100; the held job did NOT start in its place
    assert server.jobs[held].state is JobState.HELD
    server.qrls(held)
    assert server.jobs[held].state is JobState.RUNNING
    server.sim.run()
    assert server.jobs[held].exit_status == 0


def test_held_job_does_not_block_later_jobs(server):
    filler = server.qsub(queued_spec("filler", runtime=10.0))
    held = server.qsub(queued_spec("held"))
    behind = server.qsub(queued_spec("behind", runtime=10.0))
    server.qhold(held)
    server.sim.run(until=50.0)
    # `behind` overtook the held job (held doesn't head-of-line block)
    assert server.jobs[behind].state is JobState.COMPLETED
    assert server.jobs[held].state is JobState.HELD


def test_held_job_keeps_queue_position(server):
    filler = server.qsub(queued_spec("filler"))
    held = server.qsub(queued_spec("held"))
    later = server.qsub(queued_spec("later"))
    server.qhold(held)
    server.qrls(held)
    # after release it is still ahead of `later`
    names = [server.jobs[j].name for j in server.queue_order]
    assert names.index("held") < names.index("later")


def test_hold_running_job_rejected(server):
    jobid = server.qsub(queued_spec("running"))
    with pytest.raises(SchedulerError, match="only queued"):
        server.qhold(jobid)


def test_release_unheld_rejected(server):
    server.qsub(queued_spec("filler"))
    jobid = server.qsub(queued_spec("queued"))
    with pytest.raises(SchedulerError, match="not held"):
        server.qrls(jobid)


def test_qdel_held_job(server):
    server.qsub(queued_spec("filler"))
    held = server.qsub(queued_spec("held"))
    server.qhold(held)
    server.qdel(held)
    assert server.jobs[held].state is JobState.COMPLETED
    assert held not in server.queue_order


def test_held_state_renders_as_H(server):
    commands = PbsCommands(server)
    server.qsub(queued_spec("filler"))
    held = server.qsub(queued_spec("held"))
    server.qhold(held)
    assert "    job_state = H" in commands.qstat_f()


def test_held_jobs_invisible_to_detector(server):
    """A held job is parked by the admin — it is not pent-up demand, so
    the dual-boot detector must not switch nodes for it."""
    from repro.core.detector import PbsDetector

    server.node_down("enode01")
    jobid = server.qsub(queued_spec("held"))
    server.qhold(jobid)
    report = PbsDetector(PbsCommands(server)).check()
    assert report.wire == "00000none"


def test_commands_facade_hold_release(server):
    commands = PbsCommands(server)
    server.qsub(queued_spec("filler"))
    held = commands.qsub("#PBS -N held\n#PBS -l nodes=1:ppn=4\nsleep 1\n")
    commands.qhold(held)
    assert server.jobs[held].state is JobState.HELD
    commands.qrls(held)
    assert server.jobs[held].state is JobState.QUEUED
