"""NodeIndex ≡ reference scheduler — the property the scale path rests on.

The PBS server places jobs through :class:`repro.pbs.scheduler.NodeIndex`
(persistent free-core buckets); the module-level functions are the
readable O(n log n) reference.  These properties hold the two equal on
arbitrary node tables, queues, and mutation sequences — any divergence
would silently change every experiment's trace, so the tests compare
*placements* (exact hosts, in order), not just feasibility.
"""

from hypothesis import given, settings, strategies as st

from repro.pbs.job import PbsJob
from repro.pbs.nodes import PbsNodeRecord, PbsNodeState
from repro.pbs.scheduler import NodeIndex, allocate_fifo, schedulable_backlog


def _make_nodes(specs):
    """specs: list of (np, occupied, state) -> ({host: record}, NodeIndex)."""
    nodes = {}
    index = NodeIndex()
    for i, (np, occupied, state) in enumerate(specs):
        record = PbsNodeRecord(hostname=f"n{i:02d}", np=np)
        record.mark_up(0.0)
        if occupied:
            record.allocate(f"pre{i}.head", min(occupied, np))
        if state is not PbsNodeState.FREE:
            record.state = state
        nodes[record.hostname] = record
        index.add(record)
    return nodes, index


def _make_jobs(shapes):
    return [
        PbsJob(jobid=f"{i + 1}.head", name=f"j{i}", owner="u",
               nodes=n, ppn=p)
        for i, (n, p) in enumerate(shapes)
    ]


node_specs = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=8),           # np
        st.integers(min_value=0, max_value=8),           # occupied cores
        st.sampled_from([PbsNodeState.FREE, PbsNodeState.FREE,
                         PbsNodeState.DOWN, PbsNodeState.OFFLINE]),
    ),
    min_size=0,
    max_size=12,
)

job_shapes = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=4),           # nodes
        st.integers(min_value=1, max_value=8),           # ppn
    ),
    min_size=0,
    max_size=10,
)


def _hosts(placement):
    return None if placement is None else [
        (record.hostname, ppn) for record, ppn in placement
    ]


@settings(max_examples=120)
@given(specs=node_specs, shape=st.tuples(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=8),
))
def test_allocate_fifo_matches_reference(specs, shape):
    nodes, index = _make_nodes(specs)
    job = _make_jobs([shape])[0]
    assert _hosts(index.allocate_fifo(job)) == _hosts(
        allocate_fifo(job, nodes)
    )


@settings(max_examples=120)
@given(specs=node_specs, shapes=job_shapes)
def test_schedulable_backlog_matches_reference(specs, shapes):
    nodes, index = _make_nodes(specs)
    queued = _make_jobs(shapes)
    expected = [j.jobid for j in schedulable_backlog(queued, nodes)]
    got = [j.jobid for j in index.schedulable_backlog(queued)]
    assert got == expected
    # the scratch walk must not disturb the live index
    assert index.free_cores() == sum(
        r.available_cores for r in nodes.values()
    )


@settings(max_examples=80, deadline=None)
@given(
    specs=st.lists(
        st.tuples(st.integers(min_value=1, max_value=8),
                  st.integers(min_value=0, max_value=8),
                  st.just(PbsNodeState.FREE)),
        min_size=1, max_size=8,
    ),
    ops=st.lists(
        st.tuples(
            st.sampled_from(["allocate", "release", "down", "up"]),
            st.integers(min_value=0, max_value=7),   # node pick (mod len)
            st.integers(min_value=1, max_value=8),   # cores / job pick
        ),
        max_size=25,
    ),
    shape=st.tuples(st.integers(min_value=1, max_value=4),
                    st.integers(min_value=1, max_value=8)),
)
def test_index_stays_equivalent_under_mutations(specs, ops, shape):
    """reindex() after arbitrary allocate/release/up/down sequences keeps
    the index equal to a fresh reference scan of the same node table."""
    nodes, index = _make_nodes(specs)
    hostnames = sorted(nodes)
    seq = 0
    for op, pick, amount in ops:
        record = nodes[hostnames[pick % len(hostnames)]]
        if op == "allocate":
            if record.available_cores >= amount:
                seq += 1
                record.allocate(f"m{seq}.head", amount)
        elif op == "release":
            held = sorted(set(record.core_jobs.values()))
            if held:
                record.release(held[amount % len(held)])
        elif op == "down":
            record.mark_down(0.0)
        else:
            record.mark_up(0.0)
        index.reindex(record)

    assert index.free_cores() == sum(
        r.available_cores for r in nodes.values()
    )
    job = _make_jobs([shape])[0]
    assert _hosts(index.allocate_fifo(job)) == _hosts(
        allocate_fifo(job, nodes)
    )
