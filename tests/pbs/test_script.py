"""#PBS directive parsing (Figure 4 header)."""

import pytest

from repro.errors import SchedulerError
from repro.pbs import parse_pbs_script

FIGURE4_HEADER = """\
#####################################
### Job Submission Script ###
#####################################
#
#!/bin/bash
#PBS -l nodes=1:ppn=4
#PBS -N release_1_node
#PBS -q default
#PBS -j oe
#PBS -o reboot_log.out
#PBS -r n
#
echo body
"""


def test_parse_figure4_directives():
    spec = parse_pbs_script(FIGURE4_HEADER)
    assert spec.nodes == 1
    assert spec.ppn == 4
    assert spec.total_cores == 4
    assert spec.name == "release_1_node"
    assert spec.queue == "default"
    assert spec.join_oe
    assert spec.output_path == "reboot_log.out"
    assert not spec.rerunnable
    assert spec.script == FIGURE4_HEADER


def test_defaults_without_directives():
    spec = parse_pbs_script("echo hi\n")
    assert (spec.nodes, spec.ppn) == (1, 1)
    assert spec.name == "STDIN"
    assert spec.rerunnable


def test_directives_after_first_command_ignored():
    spec = parse_pbs_script("echo hi\n#PBS -N late\n")
    assert spec.name == "STDIN"


def test_nodes_without_ppn():
    spec = parse_pbs_script("#PBS -l nodes=3\n")
    assert (spec.nodes, spec.ppn) == (3, 1)


def test_walltime_parsing():
    spec = parse_pbs_script("#PBS -l walltime=01:30:15\n")
    assert spec.walltime_s == 5415.0


def test_combined_resource_list():
    spec = parse_pbs_script("#PBS -l nodes=2:ppn=4,walltime=00:10:00\n")
    assert (spec.nodes, spec.ppn, spec.walltime_s) == (2, 4, 600.0)


def test_variable_directive():
    spec = parse_pbs_script("#PBS -v FOO=1,BAR=two\n")
    assert spec.variables == {"FOO": "1", "BAR": "two"}


def test_bad_resource_list():
    with pytest.raises(SchedulerError):
        parse_pbs_script("#PBS -l gpus=2\n")


def test_unknown_flag():
    with pytest.raises(SchedulerError):
        parse_pbs_script("#PBS -Z whatever\n")


def test_malformed_directive():
    with pytest.raises(SchedulerError):
        parse_pbs_script("#PBS nodes=1\n")


def test_name_requires_value():
    with pytest.raises(SchedulerError):
        parse_pbs_script("#PBS -N\n")
