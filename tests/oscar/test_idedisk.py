"""ide.disk parsing & validation (Figure 14)."""

import pytest

from repro.errors import ConfigurationError
from repro.oscar import parse_ide_disk
from repro.oscar.idedisk import IDE_DISK_STOCK, IDE_DISK_V1_MANUAL, IDE_DISK_V2


def test_parse_figure14_v2_layout():
    layout = parse_ide_disk(IDE_DISK_V2)
    parts = layout.partitions
    assert [e.partition_number for e in parts] == [1, 2, 5, 6]
    skip = layout.entry_for(1)
    assert skip.label == "skip"
    assert skip.size_mb == 16000
    boot = layout.entry_for(2)
    assert boot.mountpoint == "/boot" and boot.bootable
    root = layout.entry_for(6)
    assert root.size_mb is None and root.mountpoint == "/"
    layout.validate()


def test_non_disk_entries_kept_but_not_partitions():
    layout = parse_ide_disk(IDE_DISK_V2)
    devices = [e.device for e in layout.entries]
    assert "/dev/shm" in devices
    assert "nfs_oscar:/home" in devices
    assert all(not e.is_disk_partition for e in layout.entries
               if e.device in ("/dev/shm", "nfs_oscar:/home"))


def test_stock_layout_valid():
    parse_ide_disk(IDE_DISK_STOCK).validate()


def test_v1_manual_layout_has_windows_and_fat():
    layout = parse_ide_disk(IDE_DISK_V1_MANUAL)
    layout.validate()
    assert layout.entry_for(1).label == "ntfs"
    assert layout.entry_for(6).label == "fat32"
    assert layout.entry_for(6).mountpoint == "/boot/swap"
    assert layout.root_partition() == 7


def test_root_and_boot_lookup():
    layout = parse_ide_disk(IDE_DISK_V2)
    assert layout.root_partition() == 6
    assert layout.boot_partition() == 2


def test_missing_root_rejected():
    with pytest.raises(ConfigurationError, match="no root"):
        parse_ide_disk("/dev/sda1 100 ext3 /boot\n").validate()


def test_duplicate_device_rejected():
    text = "/dev/sda1 100 ext3 /\n/dev/sda1 200 swap\n"
    with pytest.raises(ConfigurationError, match="duplicate"):
        parse_ide_disk(text).validate()


def test_multiple_star_sizes_rejected():
    text = "/dev/sda1 * ext3 /\n/dev/sda2 * ext3 /boot\n"
    with pytest.raises(ConfigurationError, match="at most one"):
        parse_ide_disk(text).validate()


def test_star_must_be_last():
    text = "/dev/sda1 * ext3 /\n/dev/sda2 100 ext3 /boot\n"
    with pytest.raises(ConfigurationError, match="last"):
        parse_ide_disk(text).validate()


def test_swap_with_mountpoint_rejected():
    with pytest.raises(ConfigurationError, match="cannot be mounted"):
        parse_ide_disk("/dev/sda1 512 swap /scratch\n/dev/sda2 * ext3 /\n").validate()


def test_too_few_fields_rejected():
    with pytest.raises(ConfigurationError, match="3 fields"):
        parse_ide_disk("/dev/sda1 100\n")


def test_bad_size_rejected():
    with pytest.raises(ConfigurationError, match="bad size"):
        parse_ide_disk("/dev/sda1 tiny ext3 /\n")


def test_comments_and_blanks_skipped():
    layout = parse_ide_disk("# layout\n\n/dev/sda1 * ext3 /\n")
    assert len(layout.partitions) == 1


def test_entry_for_missing_partition():
    layout = parse_ide_disk(IDE_DISK_V2)
    with pytest.raises(ConfigurationError):
        layout.entry_for(3)
