"""C3 cexec/cpush/cget tests."""

import pytest

from repro.core import MiddlewareConfig, build_hybrid_cluster
from repro.errors import MiddlewareError
from repro.oscar.c3 import C3Tools


@pytest.fixture(scope="module")
def hybrid():
    h = build_hybrid_cluster(
        num_nodes=4, seed=6, version=2,
        config=MiddlewareConfig(version=2, initial_windows_nodes=1),
    )
    h.deploy()
    h.wait_for_nodes()
    return h


def test_cexec_reaches_linux_nodes_only(hybrid):
    c3 = C3Tools(hybrid.cluster)
    result = c3.cexec("echo hello")
    assert len(result.results) == 3  # 3 linux, 1 windows
    assert result.unreachable == ["enode01"]  # the windows one
    assert not result.ok
    assert all(r.output == ["hello"] for r in result.results.values())


def test_cexec_subset(hybrid):
    c3 = C3Tools(hybrid.cluster)
    subset = [hybrid.cluster.node("enode02")]
    result = c3.cexec("echo hi", nodes=subset)
    assert list(result.results) == ["enode02"]
    assert result.ok


def test_cpush_and_cget_roundtrip(hybrid):
    c3 = C3Tools(hybrid.cluster)
    push = c3.cpush("/etc/motd", "maintenance at noon\n")
    assert len(push.results) == 3
    got = c3.cget("/etc/motd")
    assert got["enode01"] is None  # windows side unreachable
    assert got["enode02"] == "maintenance at noon\n"


def test_cexec_command_failure_reported(hybrid):
    c3 = C3Tools(hybrid.cluster)
    result = c3.cexec("/usr/bin/missing-tool")
    assert all(r.exit_code == 127 for r in result.results.values())
    assert not result.ok


def test_cexec_refuses_sleeping_commands(hybrid):
    c3 = C3Tools(hybrid.cluster)
    with pytest.raises(MiddlewareError, match="must not sleep"):
        c3.cexec("sleep 10")


def test_cget_missing_file_is_none(hybrid):
    c3 = C3Tools(hybrid.cluster)
    got = c3.cget("/no/such/file")
    assert all(v is None for v in got.values())
