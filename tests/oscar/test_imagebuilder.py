"""Image building: patch gating, defect tracking, parted op generation."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics.effort import AdminEffortLedger
from repro.oscar import build_image, parse_ide_disk
from repro.oscar.idedisk import IDE_DISK_STOCK, IDE_DISK_V1_MANUAL, IDE_DISK_V2
from repro.oscar.packages import default_package_set


def test_skip_label_rejected_unpatched():
    layout = parse_ide_disk(IDE_DISK_V2)
    with pytest.raises(ConfigurationError, match="skip"):
        build_image(layout, patched=False)


def test_skip_label_accepted_patched():
    image = build_image(parse_ide_disk(IDE_DISK_V2), patched=True)
    assert image.patched
    assert not image.install_grub_mbr  # v2: PXE, leave the MBR alone
    assert image.pending_issues() == []  # no FAT, no foreign NTFS lines


def test_v1_layout_has_all_three_defects():
    image = build_image(parse_ide_disk(IDE_DISK_V1_MANUAL))
    assert image.install_grub_mbr
    assert sorted(image.pending_issues()) == [
        "fat-mkpart", "foreign-fstab", "rsync-fat",
    ]


def test_stock_layout_clean():
    image = build_image(parse_ide_disk(IDE_DISK_STOCK))
    assert image.pending_issues() == []


def test_manual_edits_clear_issues_and_log_effort():
    image = build_image(parse_ide_disk(IDE_DISK_V1_MANUAL))
    ledger = AdminEffortLedger()
    image.apply_all_manual_edits(ledger)
    assert image.pending_issues() == []
    assert ledger.count("edit-script") == 3


def test_parted_ops_v1_layout():
    image = build_image(parse_ide_disk(IDE_DISK_V1_MANUAL))
    ops = image.parted_ops()
    rendered = [op.render() for op in ops]
    assert rendered[0] == "parted mkpart primary ntfs 150000MB"
    assert rendered[1] == "parted mkpartfs primary ext3 100MB"
    assert rendered[2] == "parted mkpart extended raw REST"
    assert "parted mkpart logical fat32 100MB" in rendered  # the defect
    image.edit_fat_mkpartfs()
    rendered2 = [op.render() for op in image.parted_ops()]
    assert "parted mkpartfs logical fat32 100MB" in rendered2


def test_parted_ops_v2_layout():
    image = build_image(parse_ide_disk(IDE_DISK_V2), patched=True)
    rendered = [op.render() for op in image.parted_ops()]
    assert rendered == [
        "parted mkpart primary raw 16000MB",   # skip reservation
        "parted mkpartfs primary ext3 100MB",
        "parted mkpart extended raw REST",
        "parted mkpartfs logical linux-swap 512MB",
        "parted mkpartfs logical ext3 REST",
    ]


def test_dualboot_files_injected_on_fat_mount():
    image = build_image(
        parse_ide_disk(IDE_DISK_V1_MANUAL),
        include_dualboot_files=True,
    )
    assert "/bootcontrol.pl" in image.trees["/boot/swap"]


def test_dualboot_files_skipped_without_fat():
    image = build_image(
        parse_ide_disk(IDE_DISK_STOCK), include_dualboot_files=True
    )
    assert "/boot/swap" not in image.trees


def test_packages_attached():
    packages = default_package_set()
    image = build_image(parse_ide_disk(IDE_DISK_STOCK), packages=packages)
    assert any(p.name == "dualboot-oscar" for p in image.packages)
