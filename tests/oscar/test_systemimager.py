"""Deploying images to disks: defect surfacing and Windows preservation."""

import pytest

from repro.boot import Firmware, resolve_boot
from repro.boot.chain import BootEnvironment
from repro.errors import DeploymentError
from repro.oscar import build_image, deploy_image_to_disk, parse_ide_disk
from repro.oscar.idedisk import IDE_DISK_STOCK, IDE_DISK_V1_MANUAL, IDE_DISK_V2
from repro.oslayer.windows import install_windows
from repro.storage import Disk, FsType

MAC = "02:00:5e:00:00:01"


def fresh_disk():
    return Disk(size_mb=250_000)


def windows_first_disk():
    """A disk where Windows was deployed first (Figure-10 script)."""
    from repro.storage.diskpart import DiskpartInterpreter, MODIFIED_DISKPART_TXT_V1

    disk = fresh_disk()
    DiskpartInterpreter(disk).run(MODIFIED_DISKPART_TXT_V1)
    install_windows(disk, system_partition=1)
    disk.filesystem(1).write("/Users/Public/data.txt", "windows user data")
    return disk


def v1_ready_image(**kw):
    image = build_image(
        parse_ide_disk(IDE_DISK_V1_MANUAL), include_dualboot_files=True, **kw
    )
    image.apply_all_manual_edits()
    return image


def test_stock_image_deploys_and_boots():
    disk = fresh_disk()
    image = build_image(parse_ide_disk(IDE_DISK_STOCK))
    report = deploy_image_to_disk(image, disk)
    assert report.grub_mbr_installed
    outcome = resolve_boot(disk, Firmware.disk_first(), MAC, BootEnvironment())
    assert outcome.os_name == "linux"
    assert outcome.root_partition == 6


def test_unedited_v1_image_fails_at_fat_rsync():
    image = build_image(
        parse_ide_disk(IDE_DISK_V1_MANUAL), include_dualboot_files=True
    )
    with pytest.raises(DeploymentError, match="mkpart was used"):
        deploy_image_to_disk(image, fresh_disk())


def test_partially_edited_v1_image_fails_at_rsync_flags():
    image = build_image(
        parse_ide_disk(IDE_DISK_V1_MANUAL), include_dualboot_files=True
    )
    image.edit_fat_mkpartfs()
    with pytest.raises(DeploymentError, match="modify-window"):
        deploy_image_to_disk(image, fresh_disk())


def test_foreign_fstab_lines_fail_unless_removed():
    image = build_image(parse_ide_disk(IDE_DISK_V1_MANUAL))
    image.edit_fat_mkpartfs()
    image.edit_rsync_fat_flags()
    with pytest.raises(DeploymentError, match="umount /dev/sda1"):
        deploy_image_to_disk(image, fresh_disk())


def test_fully_edited_v1_image_deploys():
    disk = fresh_disk()
    report = deploy_image_to_disk(v1_ready_image(), disk)
    assert disk.partition(6).fstype is FsType.FAT
    assert disk.filesystem(6).isfile("/bootcontrol.pl")
    outcome = resolve_boot(disk, Firmware.disk_first(), MAC, BootEnvironment())
    assert outcome.os_name == "linux"
    assert outcome.root_partition == 7


def test_v1_deploy_preserves_existing_windows():
    """Windows installed first; the (edited) OSCAR deploy recreates sda1
    with mkpart at identical geometry -> data survives."""
    disk = windows_first_disk()
    report = deploy_image_to_disk(v1_ready_image(), disk)
    assert 1 in report.partitions_preserved
    assert not report.destroyed_windows
    assert disk.filesystem(1).read("/Users/Public/data.txt") == "windows user data"
    # but GRUB now owns the MBR (Linux installed second, as §III.C.2 orders)
    assert disk.mbr.boot_code.is_grub


def test_v1_deploy_with_mismatched_geometry_destroys_windows():
    """If the admin sizes the ide.disk hole wrong, Windows is lost."""
    from repro.storage.diskpart import DiskpartInterpreter

    disk = fresh_disk()
    DiskpartInterpreter(disk).run(
        "select disk 0\nclean\ncreate partition primary size=120000\n"
        'format FS=NTFS LABEL="Node" QUICK OVERRIDE\nactive\nexit\n'
    )
    install_windows(disk, system_partition=1)
    report = deploy_image_to_disk(v1_ready_image(), disk)  # 150GB hole
    assert report.destroyed_windows
    assert 1 not in report.partitions_preserved


def test_v2_deploy_preserves_windows_via_skip():
    disk = windows_first_disk()
    # v2 hole must match the Windows partition: 150 GB, not Figure 14's 16 GB
    layout = parse_ide_disk(IDE_DISK_V2.replace("16000", "150000"))
    image = build_image(layout, patched=True)
    report = deploy_image_to_disk(image, disk)
    assert 1 in report.partitions_preserved
    assert not report.destroyed_windows
    assert not report.grub_mbr_installed
    # Windows' own MBR still intact -> disk boots Windows, PXE will boot Linux
    outcome = resolve_boot(disk, Firmware.disk_first(), MAC, BootEnvironment())
    assert outcome.os_name == "windows"


def test_v2_deploy_twice_is_idempotent_for_windows():
    disk = windows_first_disk()
    layout = parse_ide_disk(IDE_DISK_V2.replace("16000", "150000"))
    image = build_image(layout, patched=True)
    deploy_image_to_disk(image, disk)
    disk.filesystem(6).write("/home/user/file", "linux data")
    report = deploy_image_to_disk(image, disk)  # Linux reimage
    assert not report.destroyed_windows
    assert disk.filesystem(1).read("/Users/Public/data.txt") == "windows user data"
    # Linux root was reformatted (mkpartfs): old Linux data gone
    assert not disk.filesystem(6).exists("/home/user/file")


def test_image_tree_without_matching_mount_rejected():
    image = build_image(parse_ide_disk(IDE_DISK_STOCK))
    image.trees["/scratch"] = {"/x": "y"}
    with pytest.raises(DeploymentError, match="no matching ide.disk entry"):
        deploy_image_to_disk(image, fresh_disk())
