"""OSCAR wizard tests: step ordering, patches, client deployment."""

import pytest

from repro.errors import DeploymentError
from repro.hardware import build_cluster
from repro.oscar import apply_v2_patches
from repro.oscar.idedisk import IDE_DISK_STOCK, IDE_DISK_V2
from repro.oscar.patches import V2_PATCHES
from repro.pbs.nodes import PbsNodeState
from repro.simkernel import MINUTE, Simulator
from repro.oscar.wizard import OscarWizard


@pytest.fixture()
def cluster():
    return build_cluster(Simulator(), num_nodes=4, seed=5)


@pytest.fixture()
def wizard(cluster):
    return OscarWizard(cluster)


def run_all_steps(wizard, layout_text=IDE_DISK_STOCK, **image_kw):
    wizard.install_server()
    wizard.configure_packages()
    wizard.build_image(layout_text, **image_kw)
    wizard.define_clients()
    wizard.setup_networking()
    wizard.deploy_clients()


def test_steps_must_run_in_order(wizard):
    with pytest.raises(DeploymentError, match="out of order"):
        wizard.configure_packages()
    wizard.install_server()
    with pytest.raises(DeploymentError, match="out of order"):
        wizard.deploy_clients()


def test_complete_flag(wizard):
    assert not wizard.complete
    run_all_steps(wizard)
    assert wizard.complete


def test_configure_packages_includes_dualboot_by_default(wizard):
    wizard.install_server()
    wizard.configure_packages()
    names = {p.name for p in wizard.installation.packages}
    assert "torque" in names and "dualboot-oscar" in names


def test_define_clients_registers_pbs_nodes_and_dhcp(wizard, cluster):
    wizard.install_server()
    wizard.configure_packages()
    wizard.build_image(IDE_DISK_STOCK)
    wizard.define_clients()
    pbs = wizard.installation.pbs
    assert len(pbs.nodes) == 4
    assert pbs.node("enode01").state is PbsNodeState.DOWN  # not booted yet
    lease = wizard.installation.dhcp.discover(cluster.compute_nodes[0].mac)
    assert lease.ip.endswith(".101")


def test_setup_networking_attaches_env_and_pxelinux(wizard, cluster):
    wizard.install_server()
    wizard.configure_packages()
    wizard.build_image(IDE_DISK_STOCK)
    wizard.define_clients()
    wizard.setup_networking()
    assert cluster.env.dhcp is wizard.installation.dhcp
    assert cluster.env.tftp is wizard.installation.tftp
    assert cluster.env.tftp.fetch("/pxelinux.0") == "ROM:pxelinux"
    assert "LOCALBOOT" in cluster.env.tftp.fetch("/pxelinux.cfg/default")


def test_deploy_clients_images_and_boots_into_pbs(wizard, cluster):
    run_all_steps(wizard)
    for node in cluster.compute_nodes:
        node.power_on()
    cluster.sim.run(until=15 * MINUTE)
    pbs = wizard.installation.pbs
    assert pbs.free_cores() == 16
    assert all(
        record.state is PbsNodeState.FREE for record in pbs.nodes.values()
    )
    # PXE-first would also work: PXELINUX LOCALBOOTs to the GRUB MBR
    assert cluster.compute_nodes[0].last_boot.via == "mbr-grub"


def test_deploy_clients_without_image_fails(wizard):
    wizard.install_server()
    wizard.configure_packages()
    wizard.installation.steps_done.append("build_image")  # skipped for real
    wizard.define_clients()
    wizard.setup_networking()
    with pytest.raises(DeploymentError, match="no image"):
        wizard.deploy_clients()


def test_pbs_mom_attach_idempotent(wizard, cluster):
    node = cluster.compute_nodes[0]
    wizard.attach_pbs_mom(node)
    wizard.attach_pbs_mom(node)
    assert len(node.provisioners) == 1


def test_apply_v2_patches_idempotent(wizard):
    installation = wizard.installation
    assert not installation.patched
    first = apply_v2_patches(installation)
    assert [p.component for p in first] == ["systemimager", "systeminstaller"]
    assert installation.patched
    assert apply_v2_patches(installation) == []
    assert len(installation.applied_patches) == len(V2_PATCHES)


def test_patched_wizard_accepts_skip_layout(wizard):
    apply_v2_patches(wizard.installation)
    wizard.install_server()
    wizard.configure_packages()
    image = wizard.build_image(IDE_DISK_V2)
    assert image.patched
    assert not image.install_grub_mbr


def test_node_down_after_reboot_marks_pbs(wizard, cluster):
    run_all_steps(wizard)
    node = cluster.compute_nodes[0]
    node.power_on()
    cluster.sim.run(until=15 * MINUTE)
    pbs = wizard.installation.pbs
    assert pbs.node(node.name).state is PbsNodeState.FREE
    node.reboot()
    cluster.sim.run(until=cluster.sim.now + 1.0)  # reboot process starts
    assert pbs.node(node.name).state is PbsNodeState.DOWN
    cluster.sim.run(until=cluster.sim.now + 15 * MINUTE)
    assert pbs.node(node.name).state is PbsNodeState.FREE
