"""The scheduler-personality contract, run against every personality.

The control plane (middleware, switch pipeline, health fencing,
elasticity, recorder, energy meter) speaks only
:class:`repro.sched.SchedulerPersonality`.  This battery is the seam's
executable specification: one parametrised test per obligation, run
identically against PBS, WinHPC and SLURM.  A fourth personality earns
its place by passing this file unmodified.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sched import (
    SCHEDULER_KINDS,
    JobRequest,
    SchedulerPersonality,
    create_detector,
    create_scheduler,
)
from repro.simkernel import Simulator

NUM_NODES = 3
CORES = 4


def build(kind, num_nodes=NUM_NODES, cores=CORES):
    """A personality with *num_nodes* online nodes of *cores* cores.

    Node observers are attached *before* bring-up so the join events are
    captured; returns ``(sim, scheduler, node_events)``.
    """
    sim = Simulator()
    scheduler = create_scheduler(kind, sim, head_name="head.cluster.test")
    node_events = []
    scheduler.node_observers.append(
        lambda event, host: node_events.append((event, host))
    )
    for i in range(1, num_nodes + 1):
        name = f"n{i:02d}"
        if kind == "pbs":
            scheduler.create_node(name, np=cores)
            scheduler.node_up(name)
        else:
            scheduler.add_node(name, cores=cores)
            scheduler.node_online(name)
    return sim, scheduler, node_events


@pytest.fixture(params=SCHEDULER_KINDS)
def kind(request):
    return request.param


def test_structural_protocol_and_identity(kind):
    _, scheduler, _ = build(kind)
    assert isinstance(scheduler, SchedulerPersonality)
    assert scheduler.kind == kind
    assert scheduler.display_name
    assert scheduler.join_event in ("up", "online")
    assert scheduler.record_key_prefix
    assert scheduler.default_owner
    assert scheduler.observers == []


def test_bring_up_reports_the_join_event(kind):
    _, scheduler, node_events = build(kind)
    joins = [host for event, host in node_events
             if event == scheduler.join_event]
    assert joins == [f"n{i:02d}" for i in range(1, NUM_NODES + 1)]
    assert scheduler.online_node_count() == NUM_NODES
    assert scheduler.idle_node_count() == NUM_NODES
    assert scheduler.free_cores() == NUM_NODES * CORES


def test_submit_runs_and_reports_the_uniform_surface(kind):
    sim, scheduler, _ = build(kind)
    events = []
    scheduler.observers.append(lambda ev, job: events.append((ev, job.name)))

    jobid = scheduler.submit_request(
        JobRequest(name="probe", cores=CORES, runtime_s=60.0)
    )
    assert isinstance(jobid, str)

    job = scheduler.get_job(jobid)
    assert job is not None
    assert job.name == "probe"
    assert job.key  # recorder/energy key stub
    assert job.submitted_at == sim.now
    assert job.cores_submitted() == CORES
    assert job.cores_running() == CORES
    assert sum(job.allocation_by_host().values()) == CORES

    assert [j.name for j in scheduler.running_jobs()] == ["probe"]
    assert scheduler.queued_jobs() == []
    assert scheduler.free_cores() == (NUM_NODES - 1) * CORES
    assert scheduler.idle_node_count() == NUM_NODES - 1

    sim.run()
    assert events == [
        ("submitted", "probe"), ("started", "probe"), ("finished", "probe"),
    ]
    assert scheduler.free_cores() == NUM_NODES * CORES


def test_default_owner_is_applied(kind):
    _, scheduler, _ = build(kind)
    jobid = scheduler.submit_request(JobRequest(name="anon", runtime_s=5.0))
    job = scheduler.get_job(jobid)
    assert scheduler.default_owner in str(job.owner)


def test_cordon_blocks_and_uncordon_starts(kind):
    _, scheduler, _ = build(kind)
    for i in range(1, NUM_NODES + 1):
        scheduler.cordon_node(f"n{i:02d}")
    assert scheduler.idle_node_count() == 0

    jobid = scheduler.submit_request(
        JobRequest(name="parked", cores=1, runtime_s=60.0)
    )
    assert [j.name for j in scheduler.queued_jobs()] == ["parked"]
    assert scheduler.running_jobs() == []

    scheduler.uncordon_node("n02")
    job = scheduler.get_job(jobid)
    assert [j.name for j in scheduler.running_jobs()] == ["parked"]
    assert list(job.allocation_by_host()) == ["n02"]


def test_drain_returns_the_running_jobids(kind):
    _, scheduler, _ = build(kind)
    jobid = scheduler.submit_request(
        JobRequest(name="victim", cores=CORES, runtime_s=600.0)
    )
    host = next(iter(scheduler.get_job(jobid).allocation_by_host()))
    drained = scheduler.drain_node(host)
    assert [str(j) for j in drained] == [jobid]
    # drain cordons but does not evict
    assert [j.name for j in scheduler.running_jobs()] == ["victim"]
    assert not scheduler.node_idle(host)


def test_fence_requeues_rerunnable_work(kind):
    sim, scheduler, node_events = build(kind)
    jobid = scheduler.submit_request(
        JobRequest(name="movable", cores=CORES, runtime_s=60.0)
    )
    host = next(iter(scheduler.get_job(jobid).allocation_by_host()))

    out = scheduler.fence_node(host, cause="contract test")
    assert [str(j) for j in out["requeued"]] == [jobid]
    assert out["failed"] == []
    assert scheduler.online_node_count() == NUM_NODES - 1
    # the loss was reported to node observers
    assert node_events[-1][1] == host
    assert node_events[-1][0] != scheduler.join_event

    # the survivor fleet reruns the job to completion
    job = scheduler.get_job(jobid)
    sim.run()
    assert job.end_time is not None
    assert host not in job.allocation_by_host()


def test_fence_fails_non_rerunnable_work(kind):
    _, scheduler, _ = build(kind)
    jobid = scheduler.submit_request(
        JobRequest(name="pinned", cores=CORES, runtime_s=600.0,
                   rerunnable=False)
    )
    host = next(iter(scheduler.get_job(jobid).allocation_by_host()))
    out = scheduler.fence_node(host, cause="contract test")
    assert out["requeued"] == []
    assert [str(j) for j in out["failed"]] == [jobid]
    assert scheduler.running_jobs() == []


def test_switch_jobs_are_tracked_and_cancellable(kind):
    _, scheduler, _ = build(kind)
    script = (
        "#PBS -N release_1_node\n#PBS -l nodes=1\nshutdown -r now\n"
        if kind == "pbs"
        else "shutdown /r /t 0\n"
    )
    assert scheduler.pending_switch_jobs() == 0
    # fill the fleet so the switch job queues (cancel_if_queued contract)
    for i in range(NUM_NODES):
        scheduler.submit_request(
            JobRequest(name=f"fill-{i}", cores=CORES, runtime_s=600.0)
        )
    jobid = scheduler.submit_switch_job(script, owner="contract")
    assert isinstance(jobid, str)
    assert scheduler.pending_switch_jobs() == 1
    # switch jobs are control-plane traffic, not workload
    assert all(j.name != "release_1_node" for j in scheduler.running_jobs())
    assert scheduler.cancel_if_queued(jobid) is True
    assert scheduler.pending_switch_jobs() == 0
    assert scheduler.cancel_if_queued(jobid) is False


def test_create_detector_reports_the_queue(kind):
    _, scheduler, _ = build(kind)
    scheduler.submit_request(JobRequest(name="seen", cores=1, runtime_s=60.0))
    detector = create_detector(scheduler)
    report = detector.check()
    assert report.running == 1
    assert report.queued == 0
    assert report.wire  # non-empty wire message for the communicator


@settings(max_examples=25, deadline=None)
@given(
    kind=st.sampled_from(SCHEDULER_KINDS),
    cores=st.lists(st.integers(min_value=1, max_value=CORES),
                   min_size=1, max_size=8),
    fence_index=st.integers(min_value=1, max_value=NUM_NODES),
)
def test_fencing_never_loses_rerunnable_work(kind, cores, fence_index):
    """Property: fencing any node under any rerunnable load fails
    nothing, and every submitted job remains tracked."""
    _, scheduler, _ = build(kind)
    jobids = [
        scheduler.submit_request(
            JobRequest(name=f"w{i}", cores=c, runtime_s=600.0)
        )
        for i, c in enumerate(cores)
    ]
    out = scheduler.fence_node(f"n{fence_index:02d}", cause="property")
    assert out["failed"] == []
    for jobid in jobids:
        assert scheduler.get_job(jobid) is not None
    states = [str(scheduler.get_job(j).state) for j in jobids]
    assert len(states) == len(cores)
