"""Node-template application to the InstallShare."""

import pytest

from repro.oslayer.windows import WindowsOS
from repro.simkernel import Simulator
from repro.storage import Filesystem, FsType
from repro.winhpc import WinHpcScheduler
from repro.winhpc.templates import NodeTemplate
from repro.windeploy import InstallShare, WindowsDeployTool


@pytest.fixture()
def tool():
    fs = Filesystem(FsType.NTFS, label="winhead")
    head = WindowsOS("winhead", {"/": fs, "/c": fs})
    return WindowsDeployTool(InstallShare(head), WinHpcScheduler(Simulator()))


def test_apply_stock_template(tool):
    tool.apply_template(NodeTemplate.stock())
    assert tool.share.is_stock


def test_apply_dualboot_template(tool):
    tool.apply_template(NodeTemplate.dualboot_v1())
    assert "size=150000" in tool.share.read_diskpart()
    assert not tool.share.is_stock


def test_template_drives_deploy_geometry(tool):
    from repro.hardware import ComputeNode, INTEL_Q8200
    from repro.hardware.nic import Nic, mac_for_index
    from repro.simkernel.rng import RngStreams

    tool.apply_template(NodeTemplate.dualboot_v1())
    node = ComputeNode(
        sim=tool.scheduler.sim, name="enode01", spec=INTEL_Q8200,
        nic=Nic(mac_for_index(1)), rng=RngStreams(1),
    )
    tool.deploy_node(node)
    assert node.disk.partition(1).size_mb == 150_000
    assert node.disk.free_mb() == 100_000  # room left for Linux
