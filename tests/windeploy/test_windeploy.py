"""InstallShare + Windows deploy tool tests."""

import pytest

from repro.errors import DeploymentError, StorageError
from repro.hardware import ComputeNode, INTEL_Q8200
from repro.hardware.nic import Nic, mac_for_index
from repro.metrics.effort import AdminEffortLedger
from repro.oslayer.windows import WindowsOS
from repro.simkernel import Simulator
from repro.simkernel.rng import RngStreams
from repro.storage import Filesystem, FsType
from repro.storage.diskpart import (
    MODIFIED_DISKPART_TXT_V1,
    ORIGINAL_DISKPART_TXT,
    REIMAGE_DISKPART_TXT_V2,
)
from repro.winhpc import WinHpcScheduler, WinNodeState
from repro.windeploy import DISKPART_PATH, InstallShare, WindowsDeployTool
from tests.conftest import make_v1_disk


@pytest.fixture()
def head_os():
    fs = Filesystem(FsType.NTFS, label="winhead")
    return WindowsOS("winhead", {"/": fs, "/c": fs})


@pytest.fixture()
def share(head_os):
    return InstallShare(head_os)


def make_node(sim, name="enode01", index=1):
    return ComputeNode(
        sim=sim, name=name, spec=INTEL_Q8200,
        nic=Nic(mac_for_index(index)), rng=RngStreams(index),
    )


def test_share_initialises_with_stock_script(share):
    assert share.is_stock
    assert share.read_diskpart() == ORIGINAL_DISKPART_TXT


def test_share_lives_at_the_figure9_path(share, head_os):
    assert head_os.exists(DISKPART_PATH)
    assert "InstallShare" in DISKPART_PATH


def test_share_requires_windows_head():
    from repro.oslayer import OSInstance

    linux = OSInstance("linux", "eridani", {"/": Filesystem(FsType.EXT3)})
    with pytest.raises(DeploymentError):
        InstallShare(linux)


def test_share_patch_roundtrip(share):
    share.write_diskpart(MODIFIED_DISKPART_TXT_V1)
    assert not share.is_stock
    assert "size=150000" in share.read_diskpart()


def test_share_rejects_broken_script(share):
    with pytest.raises(StorageError):
        share.write_diskpart("select disk 0\nfrobnicate\n")
    assert share.is_stock  # unchanged


def test_deploy_node_blank_disk(share):
    sim = Simulator()
    scheduler = WinHpcScheduler(sim)
    tool = WindowsDeployTool(share, scheduler)
    node = make_node(sim)
    share.write_diskpart(MODIFIED_DISKPART_TXT_V1)
    report = tool.deploy_node(node)
    assert report.cleaned_disk
    assert not report.destroyed_linux  # nothing there to destroy
    assert node.disk.partition(1).fstype is FsType.NTFS
    assert "enode01" in scheduler.nodes
    # node boots windows now
    node.power_on()
    sim.run()
    assert node.os_name == "windows"
    assert scheduler.node("enode01").state is WinNodeState.ONLINE


def test_deploy_over_linux_charges_ledger(share):
    sim = Simulator()
    tool = WindowsDeployTool(share, WinHpcScheduler(sim))
    node = make_node(sim)
    node.disk = make_v1_disk()
    ledger = AdminEffortLedger()
    report = tool.deploy_node(node, ledger=ledger)
    assert report.destroyed_linux
    assert report.mbr_was_grub
    assert ledger.count("reinstall-other-os") == 1


def test_v2_reimage_preserves_linux_no_ledger_entry(share):
    sim = Simulator()
    tool = WindowsDeployTool(share, WinHpcScheduler(sim))
    node = make_node(sim)
    node.disk = make_v1_disk()
    share.write_diskpart(REIMAGE_DISKPART_TXT_V2)
    ledger = AdminEffortLedger()
    report = tool.reimage_node(node, ledger=ledger)
    assert not report.destroyed_linux
    assert ledger.count() == 0
    # but the MBR is still rewritten by the Windows installer
    assert not node.disk.mbr.boot_code.is_grub


def test_v2_reimage_on_blank_disk_fails(share):
    sim = Simulator()
    tool = WindowsDeployTool(share, WinHpcScheduler(sim))
    node = make_node(sim)
    share.write_diskpart(REIMAGE_DISKPART_TXT_V2)
    with pytest.raises(DeploymentError, match="reimage failed"):
        tool.reimage_node(node)


def test_node_manager_provisioner_idempotent(share):
    sim = Simulator()
    tool = WindowsDeployTool(share, WinHpcScheduler(sim))
    node = make_node(sim)
    share.write_diskpart(MODIFIED_DISKPART_TXT_V1)
    tool.deploy_node(node)
    count = len(node.provisioners)
    tool.deploy_node(node)  # reimage
    assert len(node.provisioners) == count


def test_node_reboot_marks_unreachable(share):
    sim = Simulator()
    scheduler = WinHpcScheduler(sim)
    tool = WindowsDeployTool(share, scheduler)
    node = make_node(sim)
    share.write_diskpart(MODIFIED_DISKPART_TXT_V1)
    tool.deploy_node(node)
    node.power_on()
    sim.run()
    assert scheduler.node("enode01").state is WinNodeState.ONLINE
    node.reboot()
    sim.run()
    # windows comes back (active partition), node re-onlines
    assert node.os_name == "windows"
    assert scheduler.node("enode01").state is WinNodeState.ONLINE
