"""Comparison systems + scenario runner."""

import pytest

from repro.compare import (
    HybridSystem,
    MonostableSystem,
    StaticSplitSystem,
    VirtualizedSystem,
    run_scenario,
)
from repro.compare.base import cores_to_pbs_shape
from repro.core.config import MiddlewareConfig
from repro.errors import ConfigurationError, DeploymentError
from repro.hardware.specs import INTEL_Q8200
from repro.simkernel import HOUR, MINUTE
from repro.workloads import WorkloadJob


def quick_config():
    return MiddlewareConfig(version=2, check_cycle_s=5 * MINUTE)


def small_jobs():
    return [
        WorkloadJob("lin-a", "linux", 4, 600.0, 0.0),
        WorkloadJob("lin-b", "linux", 4, 600.0, 60.0),
        WorkloadJob("win-a", "windows", 4, 600.0, 120.0),
    ]


def test_cores_to_pbs_shape():
    assert cores_to_pbs_shape(1) == (1, 1)
    assert cores_to_pbs_shape(4) == (1, 4)
    assert cores_to_pbs_shape(8) == (2, 4)
    assert cores_to_pbs_shape(6) == (2, 4)
    assert cores_to_pbs_shape(6, cores_per_node=8) == (1, 6)


def test_hybrid_system_runs_everything():
    system = HybridSystem(num_nodes=4, seed=1, config=quick_config())
    result = run_scenario(system, small_jobs(), horizon_s=3 * HOUR)
    assert result.label == "hybrid-v2"
    assert result.completed == 3
    assert result.rejected == 0
    assert result.switches >= 1  # the windows job forced a switch
    assert 0 < result.useful_utilization < 1
    assert result.wait_windows.count == 1
    assert result.wait_windows.mean > result.wait_linux.mean


def test_static_split_runs_both_sides_without_switching():
    system = StaticSplitSystem(num_nodes=4, windows_nodes=1, seed=1)
    result = run_scenario(system, small_jobs(), horizon_s=2 * HOUR)
    assert result.completed == 3
    assert result.switches == 0
    # windows job starts immediately on the permanent windows node
    assert result.wait_windows.mean < 5.0


def test_static_split_rejects_oversized_windows_jobs():
    system = StaticSplitSystem(num_nodes=4, windows_nodes=1, seed=1)
    jobs = small_jobs() + [WorkloadJob("big-win", "windows", 8, 60.0, 30.0)]
    result = run_scenario(system, jobs, horizon_s=2 * HOUR)
    assert result.rejected == 1
    assert result.completed == 3


def test_static_split_zero_windows_nodes_rejects_all_windows():
    system = StaticSplitSystem(num_nodes=2, windows_nodes=0, seed=1)
    result = run_scenario(system, small_jobs(), horizon_s=2 * HOUR)
    assert result.rejected == 1


def test_static_split_validation():
    with pytest.raises(ConfigurationError):
        StaticSplitSystem(num_nodes=4, windows_nodes=5)


def test_monostable_charges_round_trip_to_windows_jobs():
    system = MonostableSystem(num_nodes=4, seed=1)
    result = run_scenario(system, small_jobs(), horizon_s=3 * HOUR)
    assert result.completed == 3
    assert result.switches == 0  # nodes never actually leave Linux here
    # occupancy exceeds useful work: the double reboot is dead time
    assert result.utilization > result.useful_utilization


def test_virtualized_runs_both_sides_concurrently():
    system = VirtualizedSystem(num_nodes=4, seed=1)
    result = run_scenario(system, small_jobs(), horizon_s=2 * HOUR)
    assert result.completed == 3
    assert result.wait_windows.mean < 5.0  # no reboots ever
    # overhead: occupied core-seconds exceed the raw runtimes
    assert result.utilization > result.useful_utilization


def test_virtualized_refuses_non_vt_hardware():
    system = VirtualizedSystem(num_nodes=2, seed=1, spec=INTEL_Q8200)
    with pytest.raises(DeploymentError, match="virtualisation"):
        system.deploy()


def test_runner_drains_after_horizon():
    # the last job arrives at the very end and runs past the horizon
    jobs = [WorkloadJob("late", "linux", 4, 1800.0, 3590.0)]
    system = StaticSplitSystem(num_nodes=2, windows_nodes=0, seed=1)
    result = run_scenario(system, jobs, horizon_s=3600.0, drain=True)
    assert result.completed == 1
    assert result.makespan_s is not None


def test_runner_no_drain_leaves_job_running():
    jobs = [WorkloadJob("late", "linux", 4, 7200.0, 3590.0)]
    system = StaticSplitSystem(num_nodes=2, windows_nodes=0, seed=1)
    result = run_scenario(system, jobs, horizon_s=3600.0, drain=False)
    assert result.completed == 0
    assert result.completion_rate == 0.0


def test_same_trace_same_results():
    results = []
    for _ in range(2):
        system = StaticSplitSystem(num_nodes=4, windows_nodes=1, seed=9)
        results.append(run_scenario(system, small_jobs(), horizon_s=2 * HOUR))
    assert results[0].utilization == results[1].utilization
    assert results[0].wait_all.mean == results[1].wait_all.mean
