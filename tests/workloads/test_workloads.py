"""Workload generators, scenarios, traces."""

import pytest

from repro.errors import ConfigurationError
from repro.simkernel.rng import RngStreams
from repro.workloads import (
    MixedWorkload,
    SCENARIOS,
    WorkloadJob,
    bursty_arrivals,
    load_trace,
    make_scenario,
    poisson_arrivals,
    save_trace,
)


def test_poisson_arrivals_within_horizon_and_sorted():
    rng = RngStreams(1)
    times = poisson_arrivals(rng, "t", rate_per_hour=10.0, horizon_s=3600.0)
    assert times == sorted(times)
    assert all(0 <= t < 3600.0 for t in times)
    assert 2 <= len(times) <= 30  # ~10 expected


def test_poisson_rate_validation():
    with pytest.raises(ConfigurationError):
        poisson_arrivals(RngStreams(0), "t", 0.0, 100.0)


def test_bursty_arrivals_clustered():
    rng = RngStreams(2)
    times = bursty_arrivals(
        rng, "b", horizon_s=3600.0, burst_count=3, jobs_per_burst=5,
        burst_spread_s=60.0,
    )
    assert len(times) == 15
    assert times == sorted(times)
    # each burst lands inside its 60s window at the burst base
    for index, t in enumerate(times):
        assert (t % 1200.0) <= 60.0


def test_bursty_validation():
    with pytest.raises(ConfigurationError):
        bursty_arrivals(RngStreams(0), "b", 100.0, 0, 5)


def test_workload_job_validation():
    with pytest.raises(ConfigurationError):
        WorkloadJob("j", "beos", 4, 10.0, 0.0)
    with pytest.raises(ConfigurationError):
        WorkloadJob("j", "linux", 0, 10.0, 0.0)
    with pytest.raises(ConfigurationError):
        WorkloadJob("j", "linux", 4, -1.0, 0.0)


def test_mixed_workload_fraction_zero_and_one():
    all_linux = MixedWorkload(seed=4, windows_fraction=0.0).generate()
    assert all_linux and all(j.os_name == "linux" for j in all_linux)
    all_windows = MixedWorkload(seed=4, windows_fraction=1.0).generate()
    assert all_windows and all(j.os_name == "windows" for j in all_windows)


def test_mixed_workload_reproducible():
    a = MixedWorkload(seed=7).generate()
    b = MixedWorkload(seed=7).generate()
    assert a == b
    c = MixedWorkload(seed=8).generate()
    assert a != c


def test_mixed_workload_max_cores_cap():
    jobs = MixedWorkload(seed=3, max_cores=4).generate()
    assert all(j.cores <= 4 for j in jobs)


def test_mixed_workload_validation():
    with pytest.raises(ConfigurationError):
        MixedWorkload(windows_fraction=1.5)
    with pytest.raises(ConfigurationError):
        MixedWorkload(runtime_scale=0.0)


def test_all_named_scenarios_generate():
    for name in SCENARIOS:
        jobs = make_scenario(name, seed=1)
        assert jobs
        assert jobs == sorted(jobs, key=lambda j: j.arrival_s)


def test_unknown_scenario():
    with pytest.raises(ConfigurationError):
        make_scenario("black_friday")


def test_ga_case_study_shape():
    jobs = make_scenario("ga_case_study", seed=1)
    ga = [j for j in jobs if j.tag == "mdcs-ga"]
    assert len(ga) == 12
    assert all(j.os_name == "windows" and j.cores == 8 for j in ga)
    # generations are sequential: arrivals strictly increasing
    arrivals = [j.arrival_s for j in ga]
    assert arrivals == sorted(arrivals)
    assert any(j.os_name == "linux" for j in jobs)


def test_trace_roundtrip():
    jobs = MixedWorkload(seed=2, horizon_s=3600.0).generate()
    text = save_trace(jobs)
    back = load_trace(text)
    assert back == sorted(jobs, key=lambda j: j.arrival_s)


def test_trace_empty():
    assert save_trace([]) == ""
    assert load_trace("") == []


def test_trace_bad_json():
    with pytest.raises(ConfigurationError):
        load_trace("{not json\n")


def test_trace_unknown_field():
    with pytest.raises(ConfigurationError):
        load_trace('{"name": "x", "os_name": "linux", "cores": 1, '
                   '"runtime_s": 1.0, "arrival_s": 0.0, "tag": "", '
                   '"priority": 9}\n')
