"""Cluster assembly tests."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import build_cluster
from repro.hardware.cluster import node_hostname
from repro.simkernel import Simulator


@pytest.fixture()
def cluster():
    return build_cluster(Simulator(), num_nodes=16, seed=3)


def test_eridani_shape(cluster):
    assert len(cluster.compute_nodes) == 16
    assert cluster.total_cores == 64  # §III.A: 16 nodes, 64 processors
    assert cluster.linux_head.name == "eridani"
    assert cluster.windows_head.name == "winhead"
    assert cluster.linux_head.fqdn == "eridani.qgg.hud.ac.uk"


def test_node_names_and_macs_unique(cluster):
    names = [n.name for n in cluster.compute_nodes]
    macs = [n.mac for n in cluster.compute_nodes]
    assert names[0] == "enode01" and names[-1] == "enode16"
    assert len(set(names)) == 16 and len(set(macs)) == 16


def test_node_hostname_format():
    assert node_hostname(7) == "enode07"
    assert node_hostname(16) == "enode16"


def test_all_nodes_on_network(cluster):
    for node in cluster.compute_nodes:
        assert cluster.network.has_host(node.name)
    assert cluster.network.has_host("eridani")
    assert cluster.network.has_host("winhead")


def test_head_nodes_always_running(cluster):
    assert cluster.linux_head.os.running
    assert cluster.windows_head.os.running
    assert cluster.linux_head.os.kind == "linux"
    assert cluster.windows_head.os.kind == "windows"


def test_compute_disks_start_blank(cluster):
    for node in cluster.compute_nodes:
        assert node.disk.partitions == []
        assert not node.disk.mbr.bootable


def test_node_lookup(cluster):
    assert cluster.node("enode03").name == "enode03"
    with pytest.raises(ConfigurationError):
        cluster.node("enode99")


def test_nodes_running_filter(cluster):
    assert cluster.nodes_running("linux") == []
    assert cluster.failed_nodes() == []


def test_min_nodes_validation():
    with pytest.raises(ConfigurationError):
        build_cluster(Simulator(), num_nodes=0)


def test_rng_independent_per_node():
    c = build_cluster(Simulator(), num_nodes=2, seed=1)
    a = c.compute_nodes[0].rng.stream("x").random()
    b = c.compute_nodes[1].rng.stream("x").random()
    assert a != b


def test_same_seed_same_cluster():
    c1 = build_cluster(Simulator(), num_nodes=2, seed=9)
    c2 = build_cluster(Simulator(), num_nodes=2, seed=9)
    assert c1.compute_nodes[0].rng.stream("x").random() == \
        c2.compute_nodes[0].rng.stream("x").random()
