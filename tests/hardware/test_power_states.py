"""Tri-stable power state machine: legality under arbitrary op sequences.

A Hypothesis state machine drives one node through random power
operations (including boots that fail on a wiped MBR) and checks two
things after every step: the node always settles into a resting state,
and every transition the ``on_power_state`` funnel reported is one of
the documented legal edges.  Illegal API calls must raise
``MiddlewareError`` without moving the state at all.

The second half pins the interaction that makes elastic suspension safe
at all: a suspended node parks via orderly service stops, so the
heartbeat monitor sees planned downtime and never fences it — while a
genuine crash on the same rig still escalates to FENCED.
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.errors import MiddlewareError
from repro.hardware import ComputeNode, INTEL_Q8200, NodeState
from repro.hardware.nic import Nic, mac_for_index
from repro.health import HealthState, HeartbeatMonitor
from repro.simkernel import MINUTE, Simulator
from repro.simkernel.rng import RngStreams
from tests.conftest import make_v1_disk

#: states a node can rest in between operations (transients always settle)
RESTING = {
    NodeState.OFF, NodeState.UP, NodeState.FAILED,
    NodeState.SUSPENDED, NodeState.DEPROVISIONED,
}

#: every legal (old, new) edge of the tri-stable machine
LEGAL_TRANSITIONS = {
    # power application / boot chain
    (NodeState.OFF, NodeState.BOOTING),
    (NodeState.FAILED, NodeState.BOOTING),
    (NodeState.BOOTING, NodeState.UP),
    (NodeState.BOOTING, NodeState.FAILED),
    # graceful shutdown paths (reboot, suspend entry)
    (NodeState.UP, NodeState.SHUTTING_DOWN),
    (NodeState.SHUTTING_DOWN, NodeState.BOOTING),
    (NodeState.SHUTTING_DOWN, NodeState.SUSPENDED),
    # suspend exit
    (NodeState.SUSPENDED, NodeState.BOOTING),
    # hard power cut (admin power_off or crash) from any powered state
    (NodeState.UP, NodeState.OFF),
    (NodeState.SUSPENDED, NodeState.OFF),
    (NodeState.FAILED, NodeState.OFF),
    (NodeState.BOOTING, NodeState.OFF),
    (NodeState.SHUTTING_DOWN, NodeState.OFF),
    # burst pool membership
    (NodeState.UP, NodeState.DEPROVISIONED),
    (NodeState.OFF, NodeState.DEPROVISIONED),
    (NodeState.SUSPENDED, NodeState.DEPROVISIONED),
    (NodeState.FAILED, NodeState.DEPROVISIONED),
    (NodeState.DEPROVISIONED, NodeState.BOOTING),
}


def make_node(sim, seed=1):
    node = ComputeNode(
        sim=sim,
        name="enode01",
        spec=INTEL_Q8200,
        nic=Nic(mac_for_index(1)),
        rng=RngStreams(seed),
    )
    node.disk = make_v1_disk()
    return node


class PowerStateMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.sim = Simulator()
        self.node = make_node(self.sim)
        self.transitions = []
        self.node.on_power_state.append(
            lambda _node, old, new: self.transitions.append((old, new))
        )

    def _attempt(self, op, legal_from):
        before = self.node.state
        if before in legal_from:
            op()
            self.sim.run()
        else:
            with pytest.raises(MiddlewareError):
                op()
            assert self.node.state is before, (
                f"rejected op still moved the state from {before}"
            )

    @rule()
    def power_on(self):
        self._attempt(self.node.power_on,
                      {NodeState.OFF, NodeState.FAILED})

    @rule()
    def reboot(self):
        self._attempt(self.node.reboot, {NodeState.UP})

    @rule()
    def power_off(self):
        self._attempt(
            self.node.power_off,
            {NodeState.OFF, NodeState.UP, NodeState.SUSPENDED,
             NodeState.FAILED},
        )

    @rule()
    def suspend(self):
        was_up = self.node.state is NodeState.UP
        os_before = self.node.os_name
        self._attempt(self.node.suspend, {NodeState.UP})
        if was_up:
            # the RAM image remembers which OS to wake back into
            assert self.node.state is NodeState.SUSPENDED
            assert self.node.suspended_os_name == os_before

    @rule()
    def resume(self):
        expected_os = self.node.suspended_os_name
        self._attempt(self.node.resume, {NodeState.SUSPENDED})
        if expected_os is not None:
            assert self.node.state is NodeState.UP
            assert self.node.os_name == expected_os

    @rule()
    def deprovision(self):
        self._attempt(
            self.node.deprovision,
            {NodeState.OFF, NodeState.UP, NodeState.SUSPENDED,
             NodeState.FAILED},
        )

    @rule()
    def provision(self):
        self._attempt(self.node.provision, {NodeState.DEPROVISIONED})

    @rule()
    def crash(self):
        was_powered = self.node.state not in (
            NodeState.OFF, NodeState.FAILED, NodeState.DEPROVISIONED
        )
        assert self.node.crash() == was_powered
        assert self.node.state in (
            NodeState.OFF, NodeState.FAILED, NodeState.DEPROVISIONED
        )
        # RAM does not survive a power cut
        assert self.node.suspended_os_name is None

    @rule()
    def wipe_mbr(self):
        # an admin mishap: the next cold boot will land in FAILED
        self.node.disk.mbr.wipe()

    @rule()
    def repair_disk(self):
        self.node.disk = make_v1_disk()

    @invariant()
    def settles_into_a_resting_state(self):
        assert self.node.state in RESTING

    @invariant()
    def only_legal_edges_ever_fire(self):
        illegal = [t for t in self.transitions if t not in LEGAL_TRANSITIONS]
        assert illegal == [], f"illegal power transitions: {illegal}"

    @invariant()
    def suspended_iff_ram_image(self):
        if self.node.state is NodeState.SUSPENDED:
            assert self.node.suspended_os_name is not None
        else:
            assert self.node.suspended_os_name is None


PowerStateMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None,
)
TestPowerStateMachine = PowerStateMachine.TestCase


# ---------------------------------------------------------------------------
# Suspension is fence-immune; crashing is not.
# ---------------------------------------------------------------------------

def _monitored_node():
    sim = Simulator()
    monitor = HeartbeatMonitor(
        sim, beat_s=60.0, suspect_misses=2, fence_misses=5
    )
    node = make_node(sim)
    # same wiring the middleware uses: the agent is installed on every
    # fresh OS instance, so it exists after boots *and* resumes
    node.provisioners.append(
        lambda n, os_instance: monitor.attach_agent(n, os_instance)
    )
    monitor.start()
    node.power_on()
    # the monitor's poll loop never idles, so every run must be bounded
    sim.run(until=10 * MINUTE)
    assert node.state is NodeState.UP
    return sim, monitor, node


def test_suspended_node_is_never_fenced():
    sim, monitor, node = _monitored_node()
    node.suspend()
    sim.run(until=sim.now + 2 * MINUTE)
    assert node.state is NodeState.SUSPENDED

    # park far past the fence window (5 × 60 s): planned downtime —
    # the agent deregistered on the way down, so no beats are expected
    sim.run(until=sim.now + 30 * MINUTE)
    health = monitor.health(node.name)
    assert health.state is HealthState.HEALTHY
    assert health.fence_count == 0
    assert monitor.fences == monitor.suspects == 0

    node.resume()
    sim.run(until=sim.now + 2 * MINUTE)
    assert node.state is NodeState.UP
    sim.run(until=sim.now + 10 * MINUTE)
    assert monitor.health(node.name).state is HealthState.HEALTHY


def test_crash_on_the_same_rig_still_fences():
    sim, monitor, node = _monitored_node()
    node.crash()
    sim.run(until=sim.now + 30 * MINUTE)
    health = monitor.health(node.name)
    assert health.state is HealthState.FENCED
    assert health.fence_count == 1
    assert monitor.fences == 1
