"""Compute-node power state machine tests."""

import pytest

from repro.errors import MiddlewareError
from repro.hardware import ComputeNode, NodeState, INTEL_Q8200
from repro.hardware.nic import Nic, mac_for_index
from repro.simkernel import MINUTE, Simulator
from repro.simkernel.rng import RngStreams
from tests.conftest import make_v1_disk


def make_node(sim, seed=1):
    node = ComputeNode(
        sim=sim,
        name="enode01",
        spec=INTEL_Q8200,
        nic=Nic(mac_for_index(1)),
        rng=RngStreams(seed),
    )
    node.disk = make_v1_disk()
    return node


@pytest.fixture()
def sim():
    return Simulator()


def test_mac_helper():
    assert mac_for_index(1) == "02:00:5e:00:00:01"
    assert mac_for_index(300) == "02:00:5e:00:01:2c"
    with pytest.raises(ValueError):
        mac_for_index(0)


def test_cold_boot_to_linux(sim):
    node = make_node(sim)
    node.power_on()
    sim.run()
    assert node.state is NodeState.UP
    assert node.os_name == "linux"
    rec = node.last_boot
    assert rec.cold and rec.via == "mbr-grub" and rec.error is None
    # cold boot: POST + GRUB + Linux boot, no shutdown phase
    assert 1 * MINUTE < rec.duration_s < 5 * MINUTE


def test_boot_failure_marks_failed(sim):
    node = make_node(sim)
    node.disk.mbr.wipe()
    node.power_on()
    sim.run()
    assert node.state is NodeState.FAILED
    assert node.failed
    assert "MBR has no boot code" in node.last_boot.error
    assert node.os_name is None


def test_power_on_twice_rejected(sim):
    node = make_node(sim)
    node.power_on()
    sim.run()
    with pytest.raises(MiddlewareError):
        node.power_on()


def test_power_on_after_failure_allowed(sim):
    node = make_node(sim)
    node.disk.mbr.wipe()
    node.power_on()
    sim.run()
    # admin fixes the disk, retries
    node.disk = make_v1_disk()
    node.power_on()
    sim.run()
    assert node.state is NodeState.UP


def test_reboot_cycles_os(sim):
    node = make_node(sim)
    node.power_on()
    sim.run()
    t_up = sim.now
    node.reboot()
    sim.run()
    assert node.state is NodeState.UP
    assert len(node.boot_records) == 2
    warm = node.boot_records[1]
    assert not warm.cold
    # warm reboot includes the shutdown phase -> longer than 1 minute
    assert warm.duration_s > 1 * MINUTE
    assert sim.now > t_up


def test_reboot_when_not_up_rejected(sim):
    node = make_node(sim)
    with pytest.raises(MiddlewareError):
        node.reboot()


def test_os_switch_via_disk_flag(sim):
    """Flip the FAT control file, reboot, come up under Windows."""
    node = make_node(sim)
    node.power_on()
    sim.run()
    assert node.os_name == "linux"
    fatfs = node.disk.filesystem(6)
    fatfs.rename("/controlmenu_to_windows.lst", "/controlmenu.lst")
    node.reboot()
    sim.run()
    assert node.os_name == "windows"
    assert node.boot_records[1].os_name == "windows"


def test_request_reboot_is_deferred_and_idempotent(sim):
    node = make_node(sim)
    node.power_on()
    sim.run()
    node.request_reboot(delay_s=5.0)
    node.request_reboot(delay_s=5.0)  # coalesced
    sim.run()
    assert node.state is NodeState.UP
    assert len(node.boot_records) == 2  # exactly one reboot happened


def test_request_reboot_ignored_when_down(sim):
    node = make_node(sim)
    node.request_reboot()
    sim.run()
    assert node.boot_records == []


def test_os_up_down_callbacks(sim):
    node = make_node(sim)
    events = []
    node.on_os_up.append(lambda n, osi: events.append(("up", osi.kind, sim.now)))
    node.on_os_down.append(lambda n, osi: events.append(("down", osi.kind, sim.now)))
    node.power_on()
    sim.run()
    node.reboot()
    sim.run()
    kinds = [(kind, what) for what, kind, _ in events]
    assert [w for w, _, _ in events] == ["up", "down", "up"]


def test_provisioners_run_before_service_start(sim):
    node = make_node(sim)
    order = []

    def provision(n, osi):
        order.append("provision")
        from repro.oslayer import ServiceDef

        osi.add_service(ServiceDef("svc", on_start=lambda o: order.append("start")))

    node.provisioners.append(provision)
    node.power_on()
    sim.run()
    assert order == ["provision", "start"]


def test_installer_boot_without_handler_fails(sim):
    from repro.boot.chain import BootEnvironment
    from repro.boot.firmware import Firmware
    from repro.boot.pxelinux import PXELINUX_ROM
    from repro.netsvc import DhcpServer, TftpServer
    from repro.storage import Filesystem, FsType

    fs = Filesystem(FsType.EXT3)
    fs.write("/tftpboot/pxelinux.0", PXELINUX_ROM)
    fs.write("/tftpboot/pxelinux.cfg/default", "DEFAULT i\nLABEL i\nKERNEL k\n")
    fs.write("/tftpboot/k", "kernel")
    tftp = TftpServer(fs)
    dhcp = DhcpServer(default_bootfile="/pxelinux.0")

    node = make_node(sim)
    node.env = BootEnvironment(dhcp=dhcp, tftp=tftp)
    node.firmware = Firmware.pxe_first()
    node.power_on()
    sim.run()
    assert node.failed
    assert "installer" in node.last_boot.error


def test_boot_timing_deterministic_per_seed():
    times = []
    for _ in range(2):
        sim = Simulator()
        node = make_node(sim, seed=42)
        node.power_on()
        sim.run()
        times.append(node.last_boot.duration_s)
    assert times[0] == times[1]
