"""Hard node death: ``ComputeNode.crash()`` semantics.

The defining property: a crash is *silent*.  Unlike ``reboot()``/orderly
shutdown, no service ``on_stop`` hook runs — the schedulers' agents die
without deregistering, which is exactly what the heartbeat monitor
exists to notice.
"""

import pytest

from repro.hardware import INTEL_Q8200, ComputeNode, NodeState
from repro.hardware.nic import Nic, mac_for_index
from repro.oslayer.base import ServiceDef
from repro.simkernel import MINUTE, Simulator
from repro.simkernel.rng import RngStreams
from tests.conftest import make_v1_disk


def make_node(sim, seed=1):
    node = ComputeNode(
        sim=sim,
        name="enode01",
        spec=INTEL_Q8200,
        nic=Nic(mac_for_index(1)),
        rng=RngStreams(seed),
    )
    node.disk = make_v1_disk()
    return node


@pytest.fixture()
def sim():
    return Simulator()


def test_crash_of_up_node_is_silent(sim):
    node = make_node(sim)
    node.power_on()
    sim.run()
    os_instance = node.current_os
    stops = []
    os_instance.add_service(ServiceDef(
        "agent", on_start=lambda _os: None, on_stop=stops.append,
    ))
    os_down = []
    node.on_os_down.append(lambda n, o: os_down.append(o.kind))
    crashed = []
    node.on_crash.append(lambda n: crashed.append(n.name))

    assert node.crash() is True
    assert node.state is NodeState.OFF
    assert node.current_os is None
    # the OS object is dead but its stop hooks never ran — silent death
    assert os_instance.running is False
    assert stops == []
    assert os_down == ["linux"]
    assert crashed == ["enode01"]


def test_crash_while_off_is_a_noop(sim):
    node = make_node(sim)
    assert node.crash() is False
    assert node.state is NodeState.OFF


def test_crash_mid_boot_stamps_the_boot_record(sim):
    node = make_node(sim)
    node.power_on()
    sim.run(until=30.0)  # still in POST/GRUB
    assert node.state is NodeState.BOOTING
    assert node.crash(cause="psu blew") is True
    assert node.state is NodeState.OFF
    record = node.boot_records[-1]
    assert record.finished_at == 30.0
    assert record.error == "psu blew"
    # the killed boot process must not resurrect the node later
    sim.run()
    assert node.state is NodeState.OFF


def test_crashed_node_can_be_repowered(sim):
    node = make_node(sim)
    node.power_on()
    sim.run()
    node.crash()
    node.power_on()
    sim.run()
    assert node.state is NodeState.UP
    assert node.os_name == "linux"
    assert 1 * MINUTE < node.last_boot.duration_s < 5 * MINUTE


def test_crash_of_failed_node_is_a_noop(sim):
    node = make_node(sim)
    node.disk.mbr.wipe()
    node.power_on()
    sim.run()
    assert node.state is NodeState.FAILED
    assert node.crash() is False
    assert node.state is NodeState.FAILED
