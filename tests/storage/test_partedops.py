"""Tests for parted mkpart/mkpartfs semantics (systemimager master scripts)."""

import pytest

from repro.errors import StorageError
from repro.storage import Disk, FsType, PartitionKind
from repro.storage.partedops import PartedOp, apply_parted_ops, render_master_script


@pytest.fixture()
def disk():
    return Disk(size_mb=250_000)


def test_mkpartfs_formats(disk):
    ops = [PartedOp("mkpartfs", PartitionKind.PRIMARY, "ext3", 1000)]
    (p,) = apply_parted_ops(disk, ops)
    assert p.fstype is FsType.EXT3


def test_mkpart_does_not_format(disk):
    """The v1 bug: `mkpart fat32` leaves the control partition unformatted,
    so the FAT share is unusable until the admin hand-edits the script."""
    ops = [PartedOp("mkpart", PartitionKind.PRIMARY, "fat32", 100)]
    (p,) = apply_parted_ops(disk, ops)
    assert p.filesystem is None
    assert not p.formatted


def test_star_size_claims_rest(disk):
    disk.create_partition(200_000)
    ops = [PartedOp("mkpartfs", PartitionKind.PRIMARY, "ext3", None)]
    (p,) = apply_parted_ops(disk, ops)
    assert p.size_mb == 50_000


def test_star_size_logical_claims_rest_of_extended(disk):
    disk.create_partition(100_000, PartitionKind.EXTENDED)
    disk.create_partition(512, PartitionKind.LOGICAL)
    ops = [PartedOp("mkpartfs", PartitionKind.LOGICAL, "ext3", None)]
    (p,) = apply_parted_ops(disk, ops)
    assert p.size_mb == 100_000 - 512


def test_logical_before_extended_fails(disk):
    ops = [PartedOp("mkpartfs", PartitionKind.LOGICAL, "ext3", None)]
    with pytest.raises(StorageError):
        apply_parted_ops(disk, ops)


def test_star_size_with_no_space_fails(disk):
    disk.create_partition(250_000)
    with pytest.raises(StorageError):
        apply_parted_ops(
            disk, [PartedOp("mkpartfs", PartitionKind.PRIMARY, "ext3", None)]
        )


def test_unknown_verb_and_fs_rejected():
    with pytest.raises(StorageError):
        PartedOp("mkfs", PartitionKind.PRIMARY, "ext3", 10)
    with pytest.raises(StorageError):
        PartedOp("mkpart", PartitionKind.PRIMARY, "zfs", 10)


def test_render_master_script():
    ops = [
        PartedOp("mkpart", PartitionKind.PRIMARY, "raw", 16_000),
        PartedOp("mkpartfs", PartitionKind.PRIMARY, "ext3", 100),
        PartedOp("mkpartfs", PartitionKind.LOGICAL, "linux-swap", 512),
        PartedOp("mkpartfs", PartitionKind.LOGICAL, "ext3", None),
    ]
    text = render_master_script(ops)
    assert "parted mkpart primary raw 16000MB" in text
    assert "parted mkpartfs logical ext3 REST" in text


def test_full_v1_manual_layout(disk):
    """After the §III.C.1 manual edits the master script creates the
    Windows hole, /boot, and the FAT control partition with mkpartfs."""
    ops = [
        PartedOp("mkpart", PartitionKind.PRIMARY, "ntfs", 150_000),   # reserved
        PartedOp("mkpartfs", PartitionKind.PRIMARY, "ext3", 100),     # /boot
        PartedOp("mkpart", PartitionKind.EXTENDED, "raw", None),
        PartedOp("mkpartfs", PartitionKind.LOGICAL, "linux-swap", 512),
        PartedOp("mkpartfs", PartitionKind.LOGICAL, "fat32", 100),    # control
        PartedOp("mkpartfs", PartitionKind.LOGICAL, "ext3", None),    # root
    ]
    parts = apply_parted_ops(disk, ops)
    assert [p.number for p in parts] == [1, 2, 3, 5, 6, 7]
    assert disk.partition(6).fstype is FsType.FAT
    assert disk.partition(6).grub_index == 5  # (hd0,5) in Figure 2
