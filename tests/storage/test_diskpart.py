"""Tests for the diskpart interpreter against the paper's three scripts
(Figures 9, 10 and 15)."""

import pytest

from repro.errors import StorageError
from repro.storage import Disk, DiskpartInterpreter, FsType, PartitionKind
from repro.storage.diskpart import (
    MODIFIED_DISKPART_TXT_V1,
    ORIGINAL_DISKPART_TXT,
    REIMAGE_DISKPART_TXT_V2,
    parse_diskpart_script,
)
from repro.storage.mbr import BootCode


@pytest.fixture()
def disk():
    return Disk(size_mb=250_000)


def dual_boot_disk():
    """A deployed dual-boot disk: Windows sda1 + Linux sda2/5/6/7."""
    d = Disk(size_mb=250_000)
    d.create_partition(150_000).format(FsType.NTFS, label="Node")
    d.create_partition(100).format(FsType.EXT3, label="boot")
    d.create_partition(99_000, PartitionKind.EXTENDED)
    d.create_partition(512, PartitionKind.LOGICAL).format(FsType.SWAP)
    d.create_partition(100, PartitionKind.LOGICAL).format(FsType.FAT)
    d.create_partition(98_000, PartitionKind.LOGICAL).format(FsType.EXT3, label="root")
    d.filesystem(7).write("/home/sliang/data.txt", "precious")
    d.install_mbr(BootCode(BootCode.GRUB, config_partition=2))
    return d


def test_parse_original_script():
    cmds = parse_diskpart_script(ORIGINAL_DISKPART_TXT)
    assert [c.verb for c in cmds] == [
        "select_disk", "clean", "create_primary", "assign", "format",
        "active", "exit",
    ]
    assert cmds[2].args["size_mb"] is None


def test_parse_modified_script_size():
    cmds = parse_diskpart_script(MODIFIED_DISKPART_TXT_V1)
    assert cmds[2].args["size_mb"] == 150_000.0


def test_parse_format_flags():
    cmds = parse_diskpart_script(ORIGINAL_DISKPART_TXT)
    fmt = [c for c in cmds if c.verb == "format"][0]
    assert fmt.args == {"fs": "ntfs", "label": "Node", "quick": True, "override": True}


def test_parse_unknown_command_raises():
    with pytest.raises(StorageError):
        parse_diskpart_script("select disk 0\nfrobnicate\n")


def test_original_script_claims_whole_disk(disk):
    result = DiskpartInterpreter(disk).run(ORIGINAL_DISKPART_TXT)
    assert result.cleaned
    assert result.created == [1]
    assert disk.partition(1).size_mb == 250_000
    assert disk.partition(1).fstype is FsType.NTFS
    assert disk.active_partition.number == 1
    assert result.drive_letters == {"C": 1}


def test_modified_v1_script_leaves_space_for_linux(disk):
    DiskpartInterpreter(disk).run(MODIFIED_DISKPART_TXT_V1)
    assert disk.partition(1).size_mb == 150_000
    assert disk.free_mb() == 100_000


def test_original_script_destroys_linux_partitions():
    """Figure 9 semantics: `clean` wipes the Linux half AND the MBR —
    this is the v1 collateral-reinstall failure mode."""
    d = dual_boot_disk()
    DiskpartInterpreter(d).run(ORIGINAL_DISKPART_TXT)
    assert len(d.partitions) == 1
    assert d.mbr.boot_code is None or not d.mbr.boot_code.is_grub


def test_v1_modified_script_still_destroys_linux():
    d = dual_boot_disk()
    DiskpartInterpreter(d).run(MODIFIED_DISKPART_TXT_V1)
    # clean drops everything even though only 150GB is re-claimed
    assert [p.number for p in d.partitions] == [1]


def test_v2_reimage_preserves_linux():
    """Figure 15 semantics: only partition 1 is reformatted; Linux
    partitions, their data and the MBR survive."""
    d = dual_boot_disk()
    result = DiskpartInterpreter(d).run(REIMAGE_DISKPART_TXT_V2)
    assert not result.cleaned
    assert result.formatted == [1]
    assert [p.number for p in d.partitions] == [1, 2, 3, 5, 6, 7]
    assert d.filesystem(7).read("/home/sliang/data.txt") == "precious"
    assert d.mbr.boot_code.is_grub  # MBR untouched


def test_v2_reimage_wipes_windows_data():
    d = dual_boot_disk()
    d.filesystem(1).write("/Users/Public/file.txt", "old windows data")
    DiskpartInterpreter(d).run(REIMAGE_DISKPART_TXT_V2)
    assert not d.filesystem(1).exists("/Users/Public/file.txt")


def test_v2_reimage_on_blank_disk_fails():
    """Figure 15 needs an existing partition 1 — a truly bare node must be
    deployed with the Figure 10 script first."""
    d = Disk(size_mb=250_000)
    with pytest.raises(StorageError):
        DiskpartInterpreter(d).run(REIMAGE_DISKPART_TXT_V2)


def test_format_without_selection_fails(disk):
    with pytest.raises(StorageError):
        DiskpartInterpreter(disk).run(
            'select disk 0\nformat FS=NTFS LABEL="Node" QUICK OVERRIDE\n'
        )


def test_commands_without_disk_selection_fail(disk):
    with pytest.raises(StorageError):
        DiskpartInterpreter(disk).run("clean\n")


def test_select_nonzero_disk_fails(disk):
    with pytest.raises(StorageError):
        DiskpartInterpreter(disk).run("select disk 1\n")


def test_create_primary_without_space_fails(disk):
    disk.create_partition(250_000)
    with pytest.raises(StorageError):
        DiskpartInterpreter(disk).run(
            "select disk 0\ncreate partition primary\n"
        )
