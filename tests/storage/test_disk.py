"""Unit tests for Disk / Partition / MBR."""

import pytest

from repro.errors import StorageError
from repro.storage import Disk, FsType, PartitionKind
from repro.storage.mbr import BootCode
from repro.storage.partition import grub_index_to_number


@pytest.fixture()
def disk():
    return Disk(size_mb=250_000)


def test_disk_size_validation():
    with pytest.raises(StorageError):
        Disk(size_mb=0)


def test_primary_partitions_numbered_1_to_4(disk):
    nums = [disk.create_partition(1000).number for _ in range(4)]
    assert nums == [1, 2, 3, 4]
    with pytest.raises(StorageError):
        disk.create_partition(1000)


def test_partitions_packed_end_to_end(disk):
    p1 = disk.create_partition(1000)
    p2 = disk.create_partition(2000)
    assert p1.start_mb == 0
    assert p2.start_mb == p1.end_mb
    assert not p1.overlaps(p2)


def test_overflow_rejected(disk):
    disk.create_partition(200_000)
    with pytest.raises(StorageError):
        disk.create_partition(100_000)


def test_logical_requires_extended(disk):
    with pytest.raises(StorageError):
        disk.create_partition(100, PartitionKind.LOGICAL)


def test_logical_numbering_starts_at_5(disk):
    disk.create_partition(1000, PartitionKind.PRIMARY)
    disk.create_partition(50_000, PartitionKind.EXTENDED)
    l1 = disk.create_partition(512, PartitionKind.LOGICAL)
    l2 = disk.create_partition(1000, PartitionKind.LOGICAL)
    assert (l1.number, l2.number) == (5, 6)
    assert l1.linux_name == "/dev/sda5"


def test_only_one_extended(disk):
    disk.create_partition(10_000, PartitionKind.EXTENDED)
    with pytest.raises(StorageError):
        disk.create_partition(10_000, PartitionKind.EXTENDED)


def test_logical_overflow_of_extended(disk):
    disk.create_partition(1000, PartitionKind.EXTENDED)
    disk.create_partition(600, PartitionKind.LOGICAL)
    with pytest.raises(StorageError):
        disk.create_partition(600, PartitionKind.LOGICAL)


def test_logicals_live_inside_extended(disk):
    ext = disk.create_partition(10_000, PartitionKind.EXTENDED)
    log = disk.create_partition(512, PartitionKind.LOGICAL)
    assert ext.start_mb <= log.start_mb and log.end_mb <= ext.end_mb


def test_eridani_v1_layout_numbers(disk):
    """The paper's v1 layout: sda1 Windows, sda2 /boot, sda5 swap,
    sda6 FAT control, sda7 root (Figures 2-3 use (hd0,5)=sda6)."""
    win = disk.create_partition(150_000)
    boot = disk.create_partition(100)
    disk.create_partition(90_000, PartitionKind.EXTENDED)
    swap = disk.create_partition(512, PartitionKind.LOGICAL)
    fat = disk.create_partition(100, PartitionKind.LOGICAL)
    root = disk.create_partition(80_000, PartitionKind.LOGICAL)
    assert [p.number for p in (win, boot, swap, fat, root)] == [1, 2, 5, 6, 7]
    assert fat.grub_index == 5  # (hd0,5)
    assert root.linux_name == "/dev/sda7"


def test_grub_index_roundtrip():
    assert grub_index_to_number(5) == 6
    with pytest.raises(StorageError):
        grub_index_to_number(-1)


def test_format_creates_fresh_filesystem(disk):
    p = disk.create_partition(1000)
    fs1 = p.format(FsType.EXT3)
    fs1.write("/etc/hostname", "node01")
    fs2 = p.format(FsType.EXT3)
    assert fs2 is p.filesystem
    assert not fs2.exists("/etc/hostname")  # reformat destroys data


def test_format_extended_rejected(disk):
    ext = disk.create_partition(10_000, PartitionKind.EXTENDED)
    with pytest.raises(StorageError):
        ext.format(FsType.EXT3)


def test_filesystem_accessor_requires_format(disk):
    disk.create_partition(1000)
    with pytest.raises(StorageError):
        disk.filesystem(1)


def test_set_active_is_exclusive(disk):
    disk.create_partition(1000)
    disk.create_partition(1000)
    disk.set_active(1)
    disk.set_active(2)
    assert disk.active_partition.number == 2
    assert not disk.partition(1).active


def test_set_active_rejects_logical(disk):
    disk.create_partition(10_000, PartitionKind.EXTENDED)
    disk.create_partition(512, PartitionKind.LOGICAL)
    with pytest.raises(StorageError):
        disk.set_active(5)


def test_clean_wipes_partitions_and_mbr(disk):
    disk.create_partition(1000).format(FsType.NTFS)
    disk.install_mbr(BootCode(BootCode.GENERIC))
    disk.clean()
    assert disk.partitions == []
    assert not disk.mbr.bootable
    # logical numbering resets after clean
    disk.create_partition(10_000, PartitionKind.EXTENDED)
    assert disk.create_partition(512, PartitionKind.LOGICAL).number == 5


def test_delete_extended_cascades_logicals(disk):
    disk.create_partition(10_000, PartitionKind.EXTENDED)
    disk.create_partition(512, PartitionKind.LOGICAL)
    disk.create_partition(512, PartitionKind.LOGICAL)
    disk.delete_partition(1)
    assert disk.partitions == []


def test_mbr_install_grub_requires_existing_config_partition(disk):
    with pytest.raises(StorageError):
        disk.install_mbr(BootCode(BootCode.GRUB, config_partition=2))
    disk.create_partition(1000)
    disk.create_partition(100)
    disk.install_mbr(BootCode(BootCode.GRUB, config_partition=2))
    assert disk.mbr.boot_code.is_grub


def test_mbr_write_count_tracks_clobbers(disk):
    disk.create_partition(100)
    disk.install_mbr(BootCode(BootCode.GENERIC))
    disk.install_mbr(BootCode(BootCode.WINDOWS))
    assert disk.mbr.write_count == 2
    assert disk.mbr.boot_code.loader == "windows"


def test_bootcode_validation():
    with pytest.raises(ValueError):
        BootCode("lilo")
    with pytest.raises(ValueError):
        BootCode(BootCode.GRUB)  # needs config partition


def test_find_by_fstype(disk):
    disk.create_partition(1000).format(FsType.NTFS)
    disk.create_partition(1000).format(FsType.EXT3)
    disk.create_partition(1000).format(FsType.NTFS)
    assert [p.number for p in disk.find_by_fstype(FsType.NTFS)] == [1, 3]


def test_layout_summary_mentions_every_partition(disk):
    disk.create_partition(150_000).format(FsType.NTFS, label="Node")
    disk.create_partition(100).format(FsType.EXT3)
    text = disk.layout_summary()
    assert "/dev/sda1" in text and "/dev/sda2" in text and "ntfs" in text


def test_free_mb_ignores_logicals(disk):
    disk.create_partition(100_000, PartitionKind.EXTENDED)
    disk.create_partition(50_000, PartitionKind.LOGICAL)
    assert disk.free_mb() == 150_000
