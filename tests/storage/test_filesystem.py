"""Unit tests for the in-memory filesystem."""

import pytest

from repro.errors import StorageError
from repro.storage import Filesystem, FsType
from repro.storage.filesystem import normalize


@pytest.fixture()
def fs():
    return Filesystem(FsType.EXT3, label="root")


def test_normalize_paths():
    assert normalize("boot/grub//menu.lst") == "/boot/grub/menu.lst"
    assert normalize("/a/./b/../c") == "/a/c"
    assert normalize("C:\\Program Files\\x".replace("C:", "")) == "/Program Files/x"
    assert normalize("/") == "/"


def test_write_read_roundtrip(fs):
    fs.write("/etc/motd", "hello")
    assert fs.read("etc/motd") == "hello"


def test_read_missing_raises(fs):
    with pytest.raises(StorageError):
        fs.read("/nope")


def test_overwrite(fs):
    fs.write("/f", "a")
    fs.write("/f", "b")
    assert fs.read("/f") == "b"


def test_exists_file_and_implicit_dir(fs):
    fs.write("/boot/grub/menu.lst", "x")
    assert fs.exists("/boot/grub/menu.lst")
    assert fs.isdir("/boot/grub")
    assert fs.isdir("/boot")
    assert not fs.exists("/boot/grub/other")


def test_delete(fs):
    fs.write("/f", "x")
    fs.delete("/f")
    assert not fs.exists("/f")
    with pytest.raises(StorageError):
        fs.delete("/f")


def test_rename_moves_and_overwrites(fs):
    """The v1 OS-switch primitive: rename pre-staged file over the live one."""
    fs.write("/controlmenu.lst", "old")
    fs.write("/controlmenu_to_windows.lst", "boot windows")
    fs.rename("/controlmenu_to_windows.lst", "/controlmenu.lst")
    assert fs.read("/controlmenu.lst") == "boot windows"
    assert not fs.exists("/controlmenu_to_windows.lst")


def test_rename_missing_raises(fs):
    with pytest.raises(StorageError):
        fs.rename("/nope", "/dst")


def test_copy(fs):
    fs.write("/a", "data")
    fs.copy("/a", "/b")
    assert fs.read("/b") == "data"
    assert fs.exists("/a")


def test_mkdir_and_listdir_empty(fs):
    fs.mkdir("/tftpboot/menu.lst")
    assert fs.isdir("/tftpboot/menu.lst")
    assert fs.listdir("/tftpboot/menu.lst") == []


def test_listdir_children_sorted(fs):
    fs.write("/d/b.txt", "1")
    fs.write("/d/a.txt", "2")
    fs.write("/d/sub/c.txt", "3")
    assert fs.listdir("/d") == ["a.txt", "b.txt", "sub"]


def test_listdir_not_a_directory(fs):
    with pytest.raises(StorageError):
        fs.listdir("/missing")


def test_walk_sorted(fs):
    fs.write("/b", "2")
    fs.write("/a", "1")
    assert list(fs.walk()) == [("/a", "1"), ("/b", "2")]


def test_swap_rejects_file_operations():
    swap = Filesystem(FsType.SWAP)
    with pytest.raises(StorageError):
        swap.write("/x", "data")
    with pytest.raises(StorageError):
        swap.read("/x")


def test_copy_tree_from_full(fs):
    image = Filesystem(FsType.EXT3, label="image")
    image.write("/boot/vmlinuz", "kernel")
    image.write("/etc/fstab", "fstab")
    count = fs.copy_tree_from(image)
    assert count == 2
    assert fs.read("/boot/vmlinuz") == "kernel"


def test_copy_tree_from_subtree(fs):
    image = Filesystem(FsType.FAT, label="share")
    image.write("/payload/one.lst", "1")
    image.write("/payload/two.lst", "2")
    image.write("/other/skip.lst", "x")
    count = fs.copy_tree_from(image, src_root="/payload", dst_root="/")
    assert count == 2
    assert fs.read("/one.lst") == "1"
    assert not fs.exists("/skip.lst")


def test_file_count(fs):
    assert fs.file_count == 0
    fs.write("/a", "1")
    fs.write("/b", "2")
    assert fs.file_count == 2
