"""Public-API hygiene: every package imports, every __all__ name exists."""

import importlib
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.apps",
    "repro.boot",
    "repro.cli",
    "repro.compare",
    "repro.core",
    "repro.experiments",
    "repro.hardware",
    "repro.metrics",
    "repro.netsvc",
    "repro.oscar",
    "repro.oslayer",
    "repro.pbs",
    "repro.simkernel",
    "repro.storage",
    "repro.winhpc",
    "repro.windeploy",
    "repro.workloads",
]


def all_modules():
    names = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        names.append(package_name)
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                names.append(f"{package_name}.{info.name}")
    return sorted(set(names))


@pytest.mark.parametrize("module_name", all_modules())
def test_module_imports_and_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_dunder_all_names_resolve(package_name):
    package = importlib.import_module(package_name)
    for name in getattr(package, "__all__", []):
        assert hasattr(package, name), f"{package_name}.__all__ lists {name}"


def test_top_level_lazy_exports():
    assert repro.build_hybrid_cluster is not None
    assert repro.DualBootOscar is not None
    assert repro.__version__
    with pytest.raises(AttributeError):
        repro.nonexistent_attribute
