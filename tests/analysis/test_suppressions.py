"""Suppression semantics: targeting, justification policy, staleness."""

from repro.analysis import lint_source
from repro.analysis.suppressions import parse_suppressions


def rules_of(report):
    return [f.rule for f in report.findings]


def test_same_line_suppression_silences_finding():
    src = "import time\nx = time.time()  # reprolint: disable=DET001 -- bench\n"
    assert lint_source(src, module="repro.core.f").findings == []


def test_line_above_suppression_silences_finding():
    src = (
        "import time\n"
        "# reprolint: disable=DET001 -- bench timer\n"
        "x = time.time()\n"
    )
    assert lint_source(src, module="repro.core.f").findings == []


def test_suppression_only_covers_its_line():
    src = (
        "import time\n"
        "x = time.time()  # reprolint: disable=DET001 -- bench\n"
        "y = time.time()\n"
    )
    report = lint_source(src, module="repro.core.f")
    assert rules_of(report) == ["DET001"]
    assert report.findings[0].line == 3


def test_suppression_is_per_rule():
    src = (
        "import time\n"
        "def f(q=[]):  # reprolint: disable=DET001 -- wrong rule id\n"
        "    return q\n"
    )
    report = lint_source(src, module="repro.core.f")
    # API001 still fires, and the DET001 suppression is reported unused.
    assert sorted(rules_of(report)) == ["API001", "SUP002"]


def test_missing_justification_is_sup001():
    src = "import time\nx = time.time()  # reprolint: disable=DET001\n"
    report = lint_source(src, module="repro.core.f")
    assert rules_of(report) == ["SUP001"]


def test_multi_rule_suppression():
    src = (
        "import time\n"
        "def f(q=[]):\n"
        "    return q or time.time()  "
        "# reprolint: disable=DET001 -- demo of multi-rule suppression\n"
    )
    report = lint_source(src, module="repro.core.f")
    assert rules_of(report) == ["API001"]  # the mutable default, line 2


def test_malformed_rule_id_is_sup001():
    src = "x = 1  # reprolint: disable=det-one -- lowercase id\n"
    report = lint_source(src, module="repro.core.f")
    assert "SUP001" in rules_of(report)


def test_marker_inside_string_is_ignored():
    src = 's = "# reprolint: disable=DET001 -- not a comment"\n'
    assert parse_suppressions(src) == []
    assert lint_source(src, module="repro.core.f").findings == []


def test_parse_extracts_rules_and_justification():
    src = "x = 1  # reprolint: disable=DET001,TRC001 -- two rules, one why\n"
    (sup,) = parse_suppressions(src)
    assert sup.rules == ["DET001", "TRC001"]
    assert sup.justification == "two rules, one why"
    assert sup.target_line == 1


# -- flow-rule suppressions and SUP002 staleness -----------------------------

def test_flow_suppression_not_stale_in_single_file_mode():
    """Without the project-wide flow pass, a DET006 suppression silences
    nothing — but that is not evidence of staleness (the rule never
    looked), so SUP002 must stay quiet."""
    src = "x = 1  # reprolint: disable=DET006 -- cross-module; verified by flow pass\n"
    report = lint_source(src, module="repro.core.f")
    assert report.findings == []


def test_flow_suppression_is_stale_when_flow_pass_runs(tmp_path):
    """When lint_paths runs the flow pass, an unused flow-rule
    suppression is flagged like any other."""
    from repro.analysis import lint_paths

    target = tmp_path / "clean.py"
    target.write_text(
        "x = 1  # reprolint: disable=DET006 -- nothing here draws RNG\n",
        encoding="utf-8",
    )
    report = lint_paths([str(target)])
    assert [f.rule for f in report.findings] == ["SUP002"]
    report = lint_paths([str(target)], flow=False)
    assert report.findings == []
