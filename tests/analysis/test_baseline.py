"""The findings baseline (ratchet) and the flow-aware CLI flags."""

import json

import pytest

from repro.analysis import lint_paths
from repro.analysis.cli import main
from repro.analysis.findings import Finding, Severity
from repro.analysis.flow.baseline import (
    BaselineEntry,
    finding_key,
    load_baseline,
    match_baseline,
    normalize_path,
    render_baseline,
)


def finding(rule="DET006", path="src/repro/x.py", message="boom", line=3):
    return Finding(
        rule=rule, severity=Severity.ERROR, path=path, line=line, col=0,
        message=message,
    )


# -- path normalization ------------------------------------------------------

@pytest.mark.parametrize("raw,expected", [
    ("src/repro/x.py", "src/repro/x.py"),
    ("/abs/checkout/src/repro/x.py", "src/repro/x.py"),
    ("./benchmarks/bench_lint.py", "benchmarks/bench_lint.py"),
    ("elsewhere/thing.py", "elsewhere/thing.py"),
])
def test_normalize_path(raw, expected):
    assert normalize_path(raw) == expected


def test_finding_key_uses_normalized_path():
    a = finding(path="/somewhere/src/repro/x.py", line=3)
    b = finding(path="src/repro/x.py", line=99)  # line is NOT part of the key
    assert finding_key(a) == finding_key(b)


# -- matching ----------------------------------------------------------------

def test_match_subtracts_budgeted_findings():
    entries = [BaselineEntry("DET006", "src/repro/x.py", "boom", count=2)]
    findings = [finding(), finding(line=9), finding(line=12)]
    new, stale = match_baseline(findings, entries)
    assert len(new) == 1  # two grandfathered, the third is new
    assert stale == []


def test_match_reports_stale_entries():
    entries = [
        BaselineEntry("DET006", "src/repro/x.py", "boom"),
        BaselineEntry("TRC002", "src/repro/y.py", "gone"),
    ]
    new, stale = match_baseline([finding()], entries)
    assert new == []
    assert [e.rule for e in stale] == ["TRC002"]


# -- serialization -----------------------------------------------------------

def test_render_then_load_round_trips():
    text = render_baseline([finding(), finding(line=8)], why="legacy")
    entries = load_baseline(text)
    assert len(entries) == 1
    assert entries[0].count == 2
    assert entries[0].why == "legacy"
    assert entries[0].key == ("DET006", "src/repro/x.py", "boom")


@pytest.mark.parametrize("payload", [
    "[]",
    '{"version": 2, "findings": []}',
    '{"version": 1, "findings": {}}',
    '{"version": 1, "findings": [{"rule": "X1", "path": "p", '
    '"message": "m", "count": 0}]}',
])
def test_load_rejects_bad_shapes(payload):
    with pytest.raises(ValueError):
        load_baseline(payload)


# -- runner integration ------------------------------------------------------

BAD_PKG = {
    "producer.py": (
        "from repro.simkernel.rng import RngStreams\n"
        "\n"
        "\n"
        "class FaultBox:\n"
        "    def __init__(self, rng: RngStreams) -> None:\n"
        "        self.rng = rng\n"
    ),
    "consumer.py": (
        "from badpkg.producer import FaultBox\n"
        "\n"
        "\n"
        "class Scheduler:\n"
        "    def __init__(self, box: FaultBox) -> None:\n"
        "        self.box = box\n"
        "\n"
        "    def jitter(self) -> float:\n"
        "        return self.box.rng.uniform(0.0, 1.0)\n"
    ),
}


@pytest.fixture()
def bad_pkg(tmp_path):
    pkg = tmp_path / "badpkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    for name, source in BAD_PKG.items():
        (pkg / name).write_text(source, encoding="utf-8")
    return pkg


def test_runner_subtracts_baseline(bad_pkg):
    report = lint_paths([str(bad_pkg)])
    (hit,) = report.findings
    assert hit.rule == "DET006"
    entries = load_baseline(render_baseline(report.findings))
    covered = lint_paths([str(bad_pkg)], baseline=entries)
    assert covered.findings == []


def test_runner_flags_stale_baseline_entries(bad_pkg):
    entries = [BaselineEntry("TRC002", "nowhere.py", "long gone")]
    report = lint_paths(
        [str(bad_pkg)], baseline=entries, baseline_path="base.json"
    )
    rules = [f.rule for f in report.findings]
    assert rules == ["DET006", "BASE001"]
    stale = report.findings[-1]
    assert stale.severity is Severity.WARNING
    assert stale.path == "base.json"
    assert not report.ok(strict=True)


def test_no_flow_skips_flow_rules(bad_pkg):
    report = lint_paths([str(bad_pkg)], flow=False)
    assert report.findings == []
    assert report.project is None


# -- CLI ---------------------------------------------------------------------

def test_cli_baseline_and_write_baseline(bad_pkg, tmp_path, capsys):
    assert main([str(bad_pkg)]) == 1  # unbaselined DET006

    base = tmp_path / "base.json"
    assert main(["--write-baseline", str(base), str(bad_pkg)]) == 0
    capsys.readouterr()
    assert main(["--baseline", str(base), "--strict", str(bad_pkg)]) == 0
    capsys.readouterr()


def test_cli_rejects_corrupt_baseline(tmp_path, capsys):
    base = tmp_path / "base.json"
    base.write_text('{"version": 9}', encoding="utf-8")
    target = tmp_path / "clean.py"
    target.write_text("x = 1\n", encoding="utf-8")
    assert main(["--baseline", str(base), str(target)]) == 2
    assert "bad baseline" in capsys.readouterr().err


def test_cli_graph_out_is_deterministic(bad_pkg, tmp_path, capsys):
    g1 = tmp_path / "g1.json"
    g2 = tmp_path / "g2.json"
    dot = tmp_path / "g.dot"
    main(["--graph-out", str(g1), "--graph-dot", str(dot), str(bad_pkg)])
    main(["--graph-out", str(g2), str(bad_pkg)])
    capsys.readouterr()
    assert g1.read_bytes() == g2.read_bytes()
    payload = json.loads(g1.read_text(encoding="utf-8"))
    assert payload["version"] == 1
    assert dot.read_text(encoding="utf-8").startswith("digraph")


def test_cli_graph_out_requires_flow(bad_pkg, tmp_path, capsys):
    out = tmp_path / "g.json"
    assert main(["--no-flow", "--graph-out", str(out), str(bad_pkg)]) == 2
    assert "flow" in capsys.readouterr().err


def test_cli_rules_lists_flow_and_baseline_rules(capsys):
    assert main(["--rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET006", "DET007", "PERF002", "TRC002", "BASE001"):
        assert rule_id in out
    assert "[flow]" in out
