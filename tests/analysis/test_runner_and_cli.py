"""Runner mechanics (discovery, module mapping, output) and the CLI."""

import json

import pytest

from repro.analysis import lint_paths, module_name_for
from repro.analysis.cli import main
from repro.analysis.runner import iter_python_files, lint_source


# -- module name mapping -----------------------------------------------------

@pytest.mark.parametrize("path,expected", [
    ("src/repro/core/wire.py", "repro.core.wire"),
    ("src/repro/core/__init__.py", "repro.core"),
    ("src/repro/__init__.py", "repro"),
    ("/abs/checkout/src/repro/trace/events.py", "repro.trace.events"),
    ("tests/core/test_wire.py", None),
    ("setup.py", None),
])
def test_module_name_for(path, expected):
    assert module_name_for(path) == expected


# -- discovery ---------------------------------------------------------------

def test_iter_python_files_is_sorted_and_filtered(tmp_path):
    (tmp_path / "b.py").write_text("x = 1\n")
    (tmp_path / "a.py").write_text("x = 1\n")
    (tmp_path / "notes.txt").write_text("not python\n")
    sub = tmp_path / "__pycache__"
    sub.mkdir()
    (sub / "a.cpython-311.pyc").write_text("")
    hidden = tmp_path / ".hidden"
    hidden.mkdir()
    (hidden / "c.py").write_text("x = 1\n")
    files = iter_python_files([str(tmp_path)])
    assert [f.rsplit("/", 1)[-1] for f in files] == ["a.py", "b.py"]


def test_lint_paths_merges_and_sorts(tmp_path):
    (tmp_path / "b.py").write_text("import time\nx = time.time()\n")
    (tmp_path / "a.py").write_text("def f(q=[]):\n    return q\n")
    report = lint_paths([str(tmp_path)])
    assert report.files_checked == 2
    assert [f.rule for f in report.findings] == ["API001", "DET001"]
    assert report.findings[0].path.endswith("a.py")


# -- output ------------------------------------------------------------------

def test_syntax_error_is_a_parse_finding():
    report = lint_source("def broken(:\n", path="x.py")
    assert [f.rule for f in report.findings] == ["PARSE"]
    assert not report.ok()


def test_text_report_shape():
    report = lint_source(
        "def f(q=[]):\n    return q\n", path="m.py", module="repro.core.m"
    )
    text = report.to_text()
    assert "m.py:1:" in text and "API001" in text
    assert text.endswith("1 error(s), 0 warning(s) in 1 file(s)")


def test_json_report_shape():
    report = lint_source(
        "def f(q=[]):\n    return q\n", path="m.py", module="repro.core.m"
    )
    payload = json.loads(report.to_json())
    assert payload["errors"] == 1
    assert payload["files_checked"] == 1
    (finding,) = payload["findings"]
    assert finding["rule"] == "API001"
    assert finding["severity"] == "error"
    assert finding["path"] == "m.py"


# -- CLI ---------------------------------------------------------------------

def test_cli_clean_file_exits_zero(tmp_path, capsys):
    target = tmp_path / "clean.py"
    target.write_text("x = 1\n")
    assert main([str(target)]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_cli_bad_file_exits_one(tmp_path, capsys):
    target = tmp_path / "bad.py"
    target.write_text("import random\n")  # DET002 is an error everywhere
    assert main([str(target)]) == 1
    assert "DET002" in capsys.readouterr().out


def test_cli_strict_promotes_warnings(tmp_path, capsys):
    target = tmp_path / "warn.py"
    target.write_text("import time\nx = time.time()\n")  # DET001: warning here
    assert main([str(target)]) == 0
    assert main(["--strict", str(target)]) == 1
    capsys.readouterr()


def test_cli_json_output(tmp_path, capsys):
    target = tmp_path / "bad.py"
    target.write_text("import random\n")
    assert main(["--format", "json", str(target)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["errors"] == 1


def test_cli_rules_listing(capsys):
    assert main(["--rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "DET005", "TRC001", "API001", "SUP001", "SUP002"):
        assert rule_id in out
