"""PERF003 positive: a TraceEvent built eagerly at the emit site.

This pays the dataclass + boxing cost on every event regardless of the
run's ``trace_mode``, and forges a seq number the tracer never assigned
— exactly the overhead the lazy tracer fast path removed.
"""

from repro.trace import TraceEvent


def record_job_start(events, sim, node):
    events.append(
        TraceEvent(
            seq=len(events), time=sim.now, kind="pbs.job.start", node=node
        )
    )
