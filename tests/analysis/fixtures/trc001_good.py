"""TRC001 negative fixture: registered kinds and the fault.* prefix."""


def report(tracer, node, kind):
    tracer.emit("comm.report_sent", node=node)
    tracer.emit("fault.link_cut", node=node)
    tracer.emit(kind, node=node)  # dynamic: checked at runtime instead
