"""PERF001 negative: justified cold-path sorts pass.

A sort is fine in a guarded module when it is off the per-cycle path and
says so — the marker may sit on the call line or the line above.
"""


def allocate_reference(nodes, ppn):
    # perf: cold-path reference impl (property tests compare the index to it)
    for _name, record in sorted(nodes.items(), reverse=True):
        if record.available_cores >= ppn:
            return [(record, ppn)]
    return None


def ordered_report(jobs):
    return sorted(jobs, key=lambda j: j.seq_number)  # perf: cold-path — O(active) render, not per-cycle
