"""API001 positive fixture: mutable defaults and a bare except."""


def enqueue(job, queue=[]):
    queue.append(job)
    return queue


def tally(counts={}, *, seen=set()):
    return counts, seen


def guarded(fn):
    try:
        return fn()
    except:
        return None
