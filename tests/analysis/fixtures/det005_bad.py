"""DET005 positive fixture: locale-dependent strftime directives."""
import datetime

EPOCH = datetime.datetime(2010, 4, 16, 8, 0, 0)

qtime = EPOCH.strftime("%a %b %d %H:%M:%S %Y")
noon = EPOCH.strftime("%I:%M %p")
