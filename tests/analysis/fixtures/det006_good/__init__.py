"""DET006 good: the consumer spawns its own child stream."""
