"""Takes a named child stream at the boundary — the sanctioned handoff."""

from det006_good.producer import FaultBox


class Scheduler:
    def __init__(self, box: FaultBox) -> None:
        self.rng = box.rng.spawn("scheduler")

    def jitter(self) -> float:
        return self.rng.uniform(0.0, 1.0)
