"""SUP002 positive fixture: a suppression that silences nothing."""

value = 1  # reprolint: disable=DET001 -- stale: the clock read was removed
