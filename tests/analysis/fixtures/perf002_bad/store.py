"""The epoch-source class; sneak() mutates without bumping."""


class Store:
    def __init__(self) -> None:
        self.mutation_epoch = 0
        self.items = []

    def add(self, item) -> None:
        self.items.append(item)
        self.mutation_epoch += 1

    def sneak(self, item) -> None:
        # forgets the bump: Render's cache keeps serving the old text
        self.items.append(item)
