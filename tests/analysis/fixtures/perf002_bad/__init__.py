"""PERF002 bad: a writer of cached-read state forgets the epoch bump."""
