"""Caches a render keyed on Store.mutation_epoch."""

from perf002_bad.store import Store


class Render:
    def __init__(self, store: Store) -> None:
        self.store = store
        self._cache = None

    def render(self) -> str:
        epoch = self.store.mutation_epoch
        if self._cache is not None and self._cache[0] == epoch:
            return self._cache[1]
        text = ",".join(str(item) for item in self.store.items)
        self._cache = (epoch, text)
        return text
