"""TRC001 positive fixture: emitting a kind missing from the catalogue."""


def report(tracer, node):
    tracer.emit("comm.wrong_kind", node=node)
    tracer.emit("madeup.thing", cause="nope")
