"""DET003 positive fixture: set iteration feeding ordered output."""

hosts = {"wn01", "wn02"}

for host in hosts:
    print(host)

names = [h.upper() for h in {"a", "b"}]
listed = list(set(["x", "y"]))
joined = ",".join(frozenset({"p", "q"}))
both = [x for x in set("ab") | set("cd")]
