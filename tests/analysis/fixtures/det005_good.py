"""DET005 negative fixture: numeric directives or fixed name tables."""
import datetime

EPOCH = datetime.datetime(2010, 4, 16, 8, 0, 0)

iso = EPOCH.strftime("%Y-%m-%d %H:%M:%S")
DAY_ABBR = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")
qtime_day = DAY_ABBR[EPOCH.weekday()]
