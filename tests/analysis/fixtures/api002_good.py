"""API002 negative fixture: the control plane speaks repro.sched.

The concrete personalities are reachable only through the factories;
the module never names repro.pbs / repro.winhpc / repro.slurm.
"""

from repro.sched import create_detector, create_scheduler


def deploy(sim, windows_kind):
    linux = create_scheduler("pbs", sim, head_name="head.cluster")
    windows = create_scheduler(windows_kind, sim, head_name="whead.cluster")
    detectors = [create_detector(p) for p in (linux, windows)]
    return linux, windows, detectors
