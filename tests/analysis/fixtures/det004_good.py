"""DET004 negative fixture: concurrency modelled as simulator events."""


def daemon_loop(sim, cycle_s):
    while True:
        yield sim.timeout(cycle_s)
