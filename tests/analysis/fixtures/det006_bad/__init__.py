"""DET006 bad: one subsystem draws from (and stores) another's handle."""
