"""Reaches across the subsystem boundary into producer's handle."""

from det006_bad.producer import FaultBox


class Scheduler:
    def __init__(self, box: FaultBox) -> None:
        self.box = box
        self.rng = box.rng  # shared-handle store: couples both sequences

    def jitter(self) -> float:
        # cross-subsystem draw: a new call site here reshuffles producer
        return self.box.rng.uniform(0.0, 1.0)
