"""Owns the RNG handle for this fixture package."""

from repro.simkernel.rng import RngStreams


class FaultBox:
    """The subsystem that legitimately holds the stream root."""

    def __init__(self, rng: RngStreams) -> None:
        self.rng = rng
