"""submit() mutates and traces (via a private helper — closure walk)."""


class MiniSched:
    def __init__(self, tracer) -> None:
        self.tracer = tracer
        self.jobs = []

    def submit(self, job) -> None:
        self.jobs.append(job)
        self._note(job)

    def _note(self, job) -> None:
        self.tracer.emit("job.submitted", jobid=job)
