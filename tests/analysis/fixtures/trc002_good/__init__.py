"""TRC002 good: the mutation reaches an emit through a helper."""
