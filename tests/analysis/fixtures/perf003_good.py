"""PERF003 negative: emitting through the tracer keeps the fast path.

``Tracer.emit`` appends a lightweight pending tuple (or nothing at all
in the ``counts``/``off`` trace modes); the ``TraceEvent`` records are
materialised lazily, only if someone actually reads the trace.
"""


def record_recovery(tracer, node):
    tracer.emit("health.recovered", node=node)
