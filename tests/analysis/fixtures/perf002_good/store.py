"""The epoch-source class; every mutator bumps."""


class Store:
    def __init__(self) -> None:
        self.mutation_epoch = 0
        self.items = []

    def add(self, item) -> None:
        self.items.append(item)
        self.mutation_epoch += 1

    def sneak(self, item) -> None:
        self.items.append(item)
        self.mutation_epoch += 1
