"""PERF002 good: every writer of cached-read state bumps the epoch."""
