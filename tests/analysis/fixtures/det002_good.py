"""DET002 negative fixture: named, seeded substreams only."""
import numpy as np


def make_stream(run_seed):
    return np.random.default_rng(run_seed)


def jitter(streams, name):
    return streams.stream(name).uniform(0.0, 1.0)
