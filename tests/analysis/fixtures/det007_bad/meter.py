"""The suppressed DET001 read leaks into object state two hops later."""

import time


class Meter:
    def __init__(self) -> None:
        self.started_at = 0.0

    def start(self) -> None:
        t = time.time()  # reprolint: disable=DET001 -- fixture: the read itself is host-side
        # tainted through _shift(): identical runs store different values
        self.started_at = self._shift(t)

    def _shift(self, value: float) -> float:
        return value + 1.0
