"""DET007 bad: a wall-clock value flows through a helper into state."""
