"""DET001 positive fixture: wall-clock reads in simulation code."""
import time
from datetime import datetime
from time import perf_counter as pc

start = time.time()
stamp = datetime.now()
tick = pc()
time.sleep(0.1)
