"""DET004 positive fixture: real concurrency in the substrate."""
import threading
import subprocess
from concurrent.futures import ThreadPoolExecutor

lock = threading.Lock()
pool = ThreadPoolExecutor()
proc = subprocess
