"""SUP001 negative fixture: every suppression carries a reason."""
import time

start = time.time()  # reprolint: disable=DET001 -- host-side bench timer
