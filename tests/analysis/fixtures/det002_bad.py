"""DET002 positive fixture: global RNG state."""
import random
import numpy as np

x = random.random()
np.random.seed(42)
y = np.random.randint(10)
g = np.random.default_rng()
