"""DET003 negative fixture: sets are sorted at consumption (or unordered use)."""

hosts = {"wn01", "wn02"}

for host in sorted(hosts):
    print(host)

names = [h.upper() for h in sorted({"a", "b"})]
count = len(hosts)
present = "wn01" in hosts
total = sum(len(h) for h in sorted(hosts))
overlap = hosts & {"wn02"}
report = sorted(overlap)
rebound = {"z", "w"}
rebound = sorted(rebound)
listed = list(rebound)
