"""API002 positive fixture: control plane importing personalities.

Linted as ``repro.core.middleware``, where the layering rule is an
error: every concrete scheduler import below re-couples the control
plane to one personality.
"""

import repro.pbs
import repro.winhpc.scheduler
from repro.pbs.server import PbsServer
from repro.slurm.controller import SlurmController


def deploy(sim):
    linux = PbsServer(sim)
    windows = SlurmController(sim)
    return linux, windows, repro.pbs, repro.winhpc.scheduler
