"""DET001 negative fixture: time comes from the simulation clock."""
import datetime


def elapsed(sim):
    return float(sim.now)


def render(sim_seconds):
    epoch = datetime.datetime(2010, 4, 16, 8, 0, 0)
    return epoch + datetime.timedelta(seconds=sim_seconds)
