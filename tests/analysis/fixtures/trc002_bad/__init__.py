"""TRC002 bad: a public mutation with no reachable trace emit."""
