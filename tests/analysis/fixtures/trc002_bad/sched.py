"""submit() mutates the queue silently — invisible to the trace oracle."""


class MiniSched:
    def __init__(self, tracer) -> None:
        self.tracer = tracer
        self.jobs = []

    def submit(self, job) -> None:
        self.jobs.append(job)
