"""API001 negative fixture: None defaults and named exceptions."""


def enqueue(job, queue=None):
    if queue is None:
        queue = []
    queue.append(job)
    return queue


def guarded(fn):
    try:
        return fn()
    except ValueError:
        return None
