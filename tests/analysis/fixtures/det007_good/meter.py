"""Same shape as the bad twin, but the value comes from sim.now."""


class Meter:
    def __init__(self, sim) -> None:
        self.sim = sim
        self.started_at = 0.0

    def start(self) -> None:
        self.started_at = self._shift(self.sim.now)

    def _shift(self, value: float) -> float:
        return value + 1.0
