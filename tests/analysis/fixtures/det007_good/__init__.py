"""DET007 good: timestamps derive from simulation time, not the host."""
