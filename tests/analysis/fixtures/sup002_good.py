"""SUP002 negative fixture: the suppression actually covers a finding."""
import time

# reprolint: disable=DET001 -- host-side bench timer, outside the simulation
start = time.time()
