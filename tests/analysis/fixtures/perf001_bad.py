"""PERF001 positive: a per-cycle scan re-introduced on the hot path.

Sorting the whole node table on every allocation is exactly the O(n log n)
per-control-cycle cost the NodeIndex removed; without a justification
comment this must be flagged in the guarded modules.
"""


def allocate(nodes, ppn):
    for _name, record in sorted(nodes.items(), reverse=True):
        if record.available_cores >= ppn:
            return [(record, ppn)]
    return None
