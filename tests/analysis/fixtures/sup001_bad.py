"""SUP001 positive fixture: suppression without its justification."""
import time

start = time.time()  # reprolint: disable=DET001
