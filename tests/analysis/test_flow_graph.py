"""Flow-layer mechanics: import graph, call graph, graph export.

Synthetic mini-projects are written to ``tmp_path`` and parsed with
:func:`repro.analysis.build_project`, so each test states its whole
world in a few lines of fixture source.
"""

import json

import pytest

from repro.analysis import build_project
from repro.analysis.flow.graphio import (
    graph_from_json,
    graph_payload,
    graph_to_dot,
    graph_to_json,
)


def write_pkg(root, name, modules):
    pkg = root / name
    pkg.mkdir()
    (pkg / "__init__.py").write_text(modules.pop("__init__", ""), encoding="utf-8")
    for mod, source in modules.items():
        (pkg / f"{mod}.py").write_text(source, encoding="utf-8")
    return str(pkg)


# -- import graph ------------------------------------------------------------

def test_import_cycle_detection(tmp_path):
    pkg = write_pkg(tmp_path, "cyc", {
        "a": "import cyc.b\n",
        "b": "import cyc.a\n",
        "solo": "import json\n",
    })
    project = build_project([pkg])
    assert project.imports.cycles() == [["cyc.a", "cyc.b"]]


def test_relative_import_resolution(tmp_path):
    pkg = write_pkg(tmp_path, "rel", {
        "a": "from . import b\nfrom .b import thing\n",
        "b": "def thing():\n    return 1\n",
    })
    project = build_project([pkg])
    assert "rel.b" in project.imports.imports_of("rel.a")
    assert "rel.a" in project.imports.importers_of("rel.b")


# -- call graph --------------------------------------------------------------

OBSERVER_PKG = {
    "hub": (
        "class Hub:\n"
        "    def __init__(self):\n"
        "        self.on_boom = []\n"
        "\n"
        "    def fire(self):\n"
        "        for callback in self.on_boom:\n"
        "            callback('x')\n"
    ),
    "user": (
        "from obs.hub import Hub\n"
        "\n"
        "\n"
        "def handle(arg):\n"
        "    return arg\n"
        "\n"
        "\n"
        "def wire(hub: Hub):\n"
        "    hub.on_boom.append(handle)\n"
    ),
}


def test_observer_registration_and_dispatch(tmp_path):
    pkg = write_pkg(tmp_path, "obs", dict(OBSERVER_PKG))
    project = build_project([pkg])
    graph = project.callgraph
    assert graph.observers == {"on_boom": ("obs.user.handle",)} or (
        graph.observers.get("on_boom") == ["obs.user.handle"]
    )
    edges = graph.callees_of("obs.hub.Hub.fire")
    observer_edges = [e for e in edges if e.kind == "observer"]
    assert [e.callee for e in observer_edges] == ["obs.user.handle"]


def test_reexport_resolves_through_package(tmp_path):
    pkg = write_pkg(tmp_path, "pkg2", {
        "__init__": "from pkg2.impl import Widget\n",
        "impl": (
            "class Widget:\n"
            "    def ping(self):\n"
            "        return 1\n"
        ),
        "use": (
            "from pkg2 import Widget\n"
            "\n"
            "\n"
            "def make():\n"
            "    w = Widget()\n"
            "    return w.ping()\n"
        ),
    })
    project = build_project([pkg])
    callees = {e.callee for e in project.callgraph.callees_of("pkg2.use.make")}
    assert "pkg2.impl.Widget.__init__" in callees or "pkg2.impl.Widget.ping" in callees
    # the typed local lets the .ping() receiver resolve exactly
    assert "pkg2.impl.Widget.ping" in callees


def test_reachable_walks_self_and_direct_edges(tmp_path):
    pkg = write_pkg(tmp_path, "walk", {
        "m": (
            "class A:\n"
            "    def top(self):\n"
            "        return self._mid()\n"
            "\n"
            "    def _mid(self):\n"
            "        return leaf()\n"
            "\n"
            "\n"
            "def leaf():\n"
            "    return 1\n"
            "\n"
            "\n"
            "def unrelated():\n"
            "    return 2\n"
        ),
    })
    project = build_project([pkg])
    reached = project.callgraph.reachable(
        ["walk.m.A.top"], kinds=("direct", "self")
    )
    assert "walk.m.A._mid" in reached
    assert "walk.m.leaf" in reached
    assert "walk.m.unrelated" not in reached


# -- graph export ------------------------------------------------------------

@pytest.fixture()
def two_pkg_project(tmp_path):
    obs = write_pkg(tmp_path, "obs", dict(OBSERVER_PKG))
    cyc = write_pkg(tmp_path, "cyc", {
        "a": "import cyc.b\n",
        "b": "import cyc.a\n",
    })
    return [obs, cyc]


def test_graph_json_round_trips(two_pkg_project):
    payload = graph_payload(build_project(two_pkg_project))
    text = graph_to_json(payload)
    assert graph_from_json(text) == payload
    assert text.endswith("\n")


def test_graph_json_is_byte_identical_across_builds(two_pkg_project):
    first = graph_to_json(graph_payload(build_project(two_pkg_project)))
    second = graph_to_json(graph_payload(build_project(two_pkg_project)))
    assert first == second


def test_graph_payload_shape(two_pkg_project):
    payload = graph_payload(build_project(two_pkg_project))
    assert payload["version"] == 1
    names = {m["name"] for m in payload["modules"]}
    assert names >= {"obs.hub", "obs.user", "cyc.a", "cyc.b"}
    assert ["cyc.a", "cyc.b"] in payload["cycles"]
    kinds = {call["kind"] for call in payload["calls"]}
    assert "observer" in kinds


def test_graph_dot_renders_modules(two_pkg_project):
    payload = graph_payload(build_project(two_pkg_project))
    dot = graph_to_dot(payload)
    assert dot.startswith("digraph")
    assert '"obs.hub"' in dot and '"cyc.a"' in dot


def test_graph_from_json_rejects_other_versions():
    with pytest.raises(ValueError):
        graph_from_json(json.dumps({"version": 2}))
