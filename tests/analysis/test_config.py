"""Per-package severity scoping."""

from repro.analysis import (
    DEFAULT_CONFIG,
    LintConfig,
    RulePolicy,
    SUBSTRATE_PACKAGES,
    Severity,
    lint_source,
)

WALLCLOCK = "import time\nx = time.time()\n"
THREADS = "import threading\n"
EMIT_BAD = "def f(tracer):\n    tracer.emit('bogus.kind')\n"


def severities(report):
    return [(f.rule, f.severity) for f in report.findings]


def test_det001_error_in_substrate():
    report = lint_source(WALLCLOCK, module="repro.simkernel.kernel")
    assert severities(report) == [("DET001", Severity.ERROR)]
    assert not report.ok()


def test_det001_error_on_host_side_too():
    report = lint_source(WALLCLOCK, module="repro.metrics.recorder")
    assert severities(report) == [("DET001", Severity.ERROR)]


def test_det001_warning_outside_the_package():
    report = lint_source(WALLCLOCK, module=None)
    assert severities(report) == [("DET001", Severity.WARNING)]
    assert report.ok()
    assert not report.ok(strict=True)


def test_det004_off_outside_substrate():
    assert lint_source(THREADS, module="repro.cli.main").findings == []
    assert lint_source(THREADS, module=None).findings == []
    report = lint_source(THREADS, module="repro.netsvc.network")
    assert severities(report) == [("DET004", Severity.ERROR)]


def test_trc001_off_outside_repro_package():
    """Tracer unit tests emit synthetic kinds; only repro.* is policed."""
    assert lint_source(EMIT_BAD, module=None).findings == []
    report = lint_source(EMIT_BAD, module="repro.core.communicator")
    assert [f.rule for f in report.findings] == ["TRC001"]


def test_longest_prefix_wins():
    config = LintConfig(policies={
        "DET001": RulePolicy(
            default=Severity.OFF,
            overrides={
                "repro": Severity.WARNING,
                "repro.core": Severity.ERROR,
            },
        ),
    })
    report = lint_source(WALLCLOCK, module="repro.core.wire", config=config)
    assert severities(report) == [("DET001", Severity.ERROR)]
    report = lint_source(WALLCLOCK, module="repro.cli.main", config=config)
    assert severities(report) == [("DET001", Severity.WARNING)]
    assert lint_source(WALLCLOCK, module=None, config=config).findings == []


def test_prefix_matches_whole_components_only():
    config = LintConfig(policies={
        "DET001": RulePolicy(
            default=Severity.OFF,
            overrides={"repro.core": Severity.ERROR},
        ),
    })
    # "repro.corelib" must not match the "repro.core" prefix.
    assert lint_source(
        WALLCLOCK, module="repro.corelib.x", config=config
    ).findings == []


def test_substrate_list_is_sound():
    """Every substrate package must actually exist in the tree."""
    import importlib

    for pkg in SUBSTRATE_PACKAGES:
        assert importlib.import_module(pkg) is not None


def test_off_rules_never_run():
    config = LintConfig(policies={
        "DET001": RulePolicy(default=Severity.OFF),
    })
    assert lint_source(
        WALLCLOCK, module="repro.simkernel.kernel", config=config
    ).findings == []


def test_default_config_covers_every_rule():
    from repro.analysis import rule_ids

    for rule_id in rule_ids():
        assert rule_id in DEFAULT_CONFIG.policies, rule_id
