"""The acceptance gate: the shipped tree lints clean.

``repro-lint src/repro`` exiting 0 with zero findings is part of the
merge contract (and CI runs it with ``--strict``); this test is the
same check in pytest form so a violation fails the suite locally before
CI ever sees it.
"""

from pathlib import Path

from repro.analysis import lint_paths

REPO_ROOT = Path(__file__).parents[2]
SRC = REPO_ROOT / "src" / "repro"


def test_repo_source_lints_clean():
    report = lint_paths([str(SRC)])
    assert report.files_checked > 100  # the walk really found the tree
    assert report.findings == [], "\n" + "\n".join(
        f.render() for f in report.findings
    )
    assert report.ok(strict=True)


def test_benchmarks_and_examples_lint_clean():
    report = lint_paths([
        str(REPO_ROOT / "benchmarks"), str(REPO_ROOT / "examples"),
    ])
    assert report.files_checked > 0
    assert report.findings == [], "\n" + "\n".join(
        f.render() for f in report.findings
    )
