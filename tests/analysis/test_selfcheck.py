"""The acceptance gate: the shipped tree lints clean.

``repro-lint --baseline reprolint-baseline.json --strict`` exiting 0 is
part of the merge contract (CI runs exactly that); this test is the same
check in pytest form so a violation fails the suite locally before CI
ever sees it.  "Clean" means clean *modulo the committed baseline*: the
ratchet file grandfathers named pre-existing findings, and a stale entry
(debt paid but not deleted) fails here as a BASE001 warning.
"""

from pathlib import Path

from repro.analysis import lint_paths
from repro.analysis.flow.baseline import load_baseline

REPO_ROOT = Path(__file__).parents[2]
SRC = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "reprolint-baseline.json"


def _baseline():
    return load_baseline(BASELINE.read_text(encoding="utf-8"))


def test_repo_source_lints_clean():
    report = lint_paths([str(SRC)], baseline=_baseline())
    assert report.files_checked > 100  # the walk really found the tree
    assert report.findings == [], "\n" + "\n".join(
        f.render() for f in report.findings
    )
    assert report.ok(strict=True)


def test_benchmarks_and_examples_lint_clean():
    report = lint_paths([
        str(REPO_ROOT / "benchmarks"), str(REPO_ROOT / "examples"),
    ])
    assert report.files_checked > 0
    assert report.findings == [], "\n" + "\n".join(
        f.render() for f in report.findings
    )


def test_baseline_has_no_unjustified_entries():
    """Every grandfathered finding carries its own why."""
    entries = _baseline()
    for entry in entries:
        assert entry.why, f"baseline entry for {entry.rule} needs a 'why'"


def test_full_tree_lints_clean_with_baseline():
    """The exact CI invocation: src + benchmarks + examples, strict."""
    report = lint_paths(
        [str(SRC), str(REPO_ROOT / "benchmarks"), str(REPO_ROOT / "examples")],
        baseline=_baseline(),
        baseline_path=str(BASELINE),
    )
    assert report.findings == [], "\n" + "\n".join(
        f.render() for f in report.findings
    )
    assert report.ok(strict=True)
