"""Every lint rule: one positive (bad) and one negative (good) fixture.

Fixtures live under ``tests/analysis/fixtures`` as real source files so
they double as readable examples of each violation; they are linted as
if they sat inside the simulated substrate (``repro.core``), which is
where every rule is active.
"""

from pathlib import Path

import pytest

from repro.analysis import (
    DEFAULT_CONFIG,
    LintConfig,
    RulePolicy,
    Severity,
    lint_paths,
    lint_source,
)

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id -> exact set of rules its *bad* fixture must trigger.  Exact,
#: not superset: a bad fixture tripping an unrelated rule would mean the
#: fixtures (and docs examples) teach the wrong lesson.
EXPECTED = {
    "DET001": {"DET001"},
    "DET002": {"DET002"},
    "DET003": {"DET003"},
    "DET004": {"DET004"},
    "DET005": {"DET005"},
    "TRC001": {"TRC001"},
    "API001": {"API001"},
    "API002": {"API002"},
    "SUP001": {"SUP001"},
    "SUP002": {"SUP002"},
    "PERF001": {"PERF001"},
    "PERF003": {"PERF003"},
}

#: Rules that are scoped to specific modules (not package-wide): their
#: fixtures must lint *as* a module where the rule is active.
MODULE_FOR = {
    "perf001": "repro.core.detector",
    "api002": "repro.core.middleware",
}


def lint_fixture(name: str):
    path = FIXTURES / f"{name}.py"
    source = path.read_text(encoding="utf-8")
    stem = name.rsplit("_", 1)[0]
    module = MODULE_FOR.get(stem, f"repro.core.{name}")
    return lint_source(source, path=str(path), module=module)


@pytest.mark.parametrize("rule_id", sorted(EXPECTED))
def test_bad_fixture_triggers_rule(rule_id):
    report = lint_fixture(f"{rule_id.lower()}_bad")
    fired = {f.rule for f in report.findings}
    assert fired == EXPECTED[rule_id], [f.render() for f in report.findings]
    assert not report.ok()


@pytest.mark.parametrize("rule_id", sorted(EXPECTED))
def test_good_fixture_is_clean(rule_id):
    report = lint_fixture(f"{rule_id.lower()}_good")
    assert report.findings == [], [f.render() for f in report.findings]
    assert report.ok()


def test_every_registered_rule_has_fixture_pair():
    """Adding a rule without fixtures fails here, not in review.

    Per-file rules get single-file fixtures; graph-aware flow rules get
    fixture *packages* (directories), since their findings span files.
    """
    from repro.analysis import flow_rule_ids, rule_ids
    from repro.analysis.suppressions import SUPPRESSION_RULES

    covered = set(EXPECTED) | set(FLOW_EXPECTED)
    flow_ids = flow_rule_ids()
    for rule_id in list(rule_ids()) + list(SUPPRESSION_RULES):
        assert rule_id in covered, f"no fixture pair for {rule_id}"
        stem = rule_id.lower()
        if rule_id in flow_ids:
            assert (FIXTURES / f"{stem}_bad").is_dir()
            assert (FIXTURES / f"{stem}_good").is_dir()
        else:
            assert (FIXTURES / f"{stem}_bad.py").is_file()
            assert (FIXTURES / f"{stem}_good.py").is_file()


# -- flow (graph-aware) rules ------------------------------------------------

FLOW_EXPECTED = {
    "DET006": {"DET006"},
    "DET007": {"DET007"},
    "PERF002": {"PERF002"},
    "TRC002": {"TRC002"},
}


def _flow_config(rule_id: str) -> LintConfig:
    """TRC002 is scoped to the audited control-plane packages by default;
    its fixture package must lint with the rule switched on."""
    if rule_id != "TRC002":
        return DEFAULT_CONFIG
    policies = dict(DEFAULT_CONFIG.policies)
    policies["TRC002"] = RulePolicy(default=Severity.ERROR)
    return LintConfig(policies=policies)


def lint_flow_fixture(rule_id: str, kind: str):
    name = f"{rule_id.lower()}_{kind}"
    return lint_paths([str(FIXTURES / name)], config=_flow_config(rule_id))


@pytest.mark.parametrize("rule_id", sorted(FLOW_EXPECTED))
def test_bad_flow_fixture_triggers_rule(rule_id):
    report = lint_flow_fixture(rule_id, "bad")
    fired = {f.rule for f in report.findings}
    assert fired == FLOW_EXPECTED[rule_id], [
        f.render() for f in report.findings
    ]
    assert not report.ok()


@pytest.mark.parametrize("rule_id", sorted(FLOW_EXPECTED))
def test_good_flow_fixture_is_clean(rule_id):
    report = lint_flow_fixture(rule_id, "good")
    assert report.findings == [], [f.render() for f in report.findings]
    assert report.ok()


def test_det006_reports_both_store_and_draw():
    report = lint_flow_fixture("DET006", "bad")
    messages = sorted(f.message for f in report.findings)
    assert len(messages) == 2
    assert "stores an RNG handle" in messages[1]
    assert ".uniform()" in messages[0]


def test_perf002_names_the_unsafe_writer():
    report = lint_flow_fixture("PERF002", "bad")
    (finding,) = report.findings
    assert "Store.sneak()" in finding.message
    assert "Store.items" in finding.message


def test_det001_counts_each_call_site():
    report = lint_fixture("det001_bad")
    assert len(report.findings) == 4  # time(), now(), pc(), sleep()


def test_det003_respects_rebinding():
    """A tainted name rebound to a sorted list is no longer a set."""
    src = "xs = {1, 2}\nxs = sorted(xs)\nout = list(xs)\n"
    assert lint_source(src, module="repro.core.f").findings == []


def test_trc001_skips_dynamic_kinds():
    src = "def f(tracer, kind):\n    tracer.emit(kind, node='n')\n"
    assert lint_source(src, module="repro.core.f").findings == []


def test_det001_aliased_import_is_still_caught():
    src = "import time as t\nx = t.time()\n"
    report = lint_source(src, module="repro.core.f")
    assert [f.rule for f in report.findings] == ["DET001"]
