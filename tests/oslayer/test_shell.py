"""Shell interpreter tests, including the Figure-4 script body."""

import pytest

from repro.oslayer import OSInstance, run_script
from repro.oslayer.shell import ShellResult, expand_variables
from repro.oslayer.windows import WindowsOS
from repro.simkernel import Simulator
from repro.storage import Filesystem, FsType


@pytest.fixture()
def sim():
    return Simulator()


@pytest.fixture()
def osi():
    root = Filesystem(FsType.EXT3, label="root")
    fat = Filesystem(FsType.FAT, label="DB")
    instance = OSInstance("linux", "enode01", {"/": root, "/boot/swap": fat})
    instance.mkdir("/home/sliang/reboot_log")
    return instance


def run(sim, osi, text, env=None) -> ShellResult:
    proc = sim.spawn(run_script(osi, text, env=env))
    sim.run()
    return proc.result


def test_expand_variables():
    env = {"PBS_JOBID": "1185.eridani"}
    assert expand_variables(r"echo \$PBS_JOBID", env) == "echo 1185.eridani"
    assert expand_variables("echo $PBS_JOBID", env) == "echo 1185.eridani"
    assert expand_variables("echo $MISSING!", {}) == "echo !"


def test_echo_append_and_overwrite(sim, osi):
    result = run(sim, osi, "echo one >> /log\necho two >> /log\necho three > /log\n")
    assert result.ok
    assert osi.read("/log") == "three\n"


def test_echo_to_stdout(sim, osi):
    result = run(sim, osi, "echo hello world\n")
    assert result.output == ["hello world"]


def test_sleep_advances_time(sim, osi):
    result = run(sim, osi, "sleep 10\n")
    assert result.ok
    assert sim.now == 10.0


def test_sleep_bad_args(sim, osi):
    assert run(sim, osi, "sleep\n").exit_code == 127
    assert run(sim, osi, "sleep soon\n").exit_code == 127


def test_sudo_stripped(sim, osi):
    result = run(sim, osi, "sudo echo ok\n")
    assert result.output == ["ok"]


def test_unknown_command_fails_with_127(sim, osi):
    result = run(sim, osi, "/usr/bin/frobnicate --hard\n")
    assert result.exit_code == 127
    assert "command not found" in result.error


def test_reboot_without_power_control_fails(sim, osi):
    result = run(sim, osi, "sudo reboot\n")
    assert result.exit_code == 127


def test_reboot_requests_via_context(sim, osi):
    calls = []
    osi.context["request_reboot"] = lambda: calls.append(sim.now)
    result = run(sim, osi, "sudo reboot\nsleep 10\n")
    assert result.ok
    assert calls == [0.0]


def test_windows_shutdown_r(sim):
    fs = Filesystem(FsType.NTFS, label="c")
    osi = WindowsOS("wn01", {"/": fs, "/c": fs})
    calls = []
    osi.context["request_reboot"] = lambda: calls.append(1)
    proc = sim.spawn(run_script(osi, "shutdown /r /t 0\n"))
    sim.run()
    assert proc.result.ok and calls == [1]


def test_ren_windows_style(sim):
    fs = Filesystem(FsType.NTFS, label="c")
    fat = Filesystem(FsType.FAT, label="db")
    fat.write("/controlmenu_to_windows.lst", "win")
    osi = WindowsOS("wn01", {"/": fs, "/c": fs, "/d": fat})
    proc = sim.spawn(
        run_script(osi, r"ren D:\controlmenu_to_windows.lst controlmenu.lst")
    )
    sim.run()
    assert proc.result.ok
    assert fat.read("/controlmenu.lst") == "win"


def test_mv_posix_style(sim, osi):
    osi.write("/boot/swap/a.lst", "x")
    result = run(sim, osi, "mv /boot/swap/a.lst /boot/swap/b.lst\n")
    assert result.ok
    assert osi.read("/boot/swap/b.lst") == "x"


def test_mv_missing_file_exits_1(sim, osi):
    result = run(sim, osi, "mv /nope /dst\n")
    assert result.exit_code == 1


def test_binary_dispatch_with_args(sim, osi):
    seen = []
    osi.register_binary(
        "/boot/swap/bootcontrol.pl",
        lambda instance, args: seen.append(tuple(args)) or "switched",
    )
    result = run(
        sim, osi,
        "sudo /boot/swap/bootcontrol.pl /boot/swap/controlmenu.lst windows #switch\n",
    )
    assert result.ok
    assert seen == [("/boot/swap/controlmenu.lst", "windows")]
    assert result.output == ["switched"]


def test_comments_and_directives_skipped(sim, osi):
    text = (
        "#####################\n"
        "#PBS -l nodes=1:ppn=4\n"
        "#!/bin/bash\n"
        ":: windows comment\n"
        "rem another\n"
        "@echo off\n"
        "echo ran\n"
    )
    result = run(sim, osi, text)
    assert result.output == ["ran"]


def test_figure4_script_body_semantics(sim, osi):
    """The executable body of the Figure-4 PBS job."""
    switched = []
    osi.register_binary(
        "/boot/swap/bootcontrol.pl",
        lambda instance, args: switched.append(args[1]),
    )
    rebooted = []
    osi.context["request_reboot"] = lambda: rebooted.append(sim.now)
    text = (
        "echo \\$PBS_JOBID >>/home/sliang/reboot_log/rebootjob.log #write logs\n"
        "sudo /boot/swap/bootcontrol.pl /boot/swap/controlmenu.lst windows "
        "#changes default boot OS\n"
        "sudo reboot #reboot node\n"
        "sleep 10 #leave 10 seconds to avoid job be finished before reboot\n"
    )
    result = run(sim, osi, text, env={"PBS_JOBID": "1185.eridani.qgg.hud.ac.uk"})
    assert result.ok
    assert osi.read("/home/sliang/reboot_log/rebootjob.log") == (
        "1185.eridani.qgg.hud.ac.uk\n"
    )
    assert switched == ["windows"]
    assert rebooted == [0.0]
    assert sim.now == 10.0
