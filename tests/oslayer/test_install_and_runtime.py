"""Installers and from_disk runtime reconstruction."""

import pytest

from repro.errors import BootError, ConfigurationError
from repro.boot import Firmware, resolve_boot
from repro.boot.chain import BootEnvironment
from repro.oslayer import LinuxOS, WindowsOS, install_linux, install_windows
from repro.storage import Disk, FsType, PartitionKind


def make_partitions():
    """v1-style layout with raw partitions formatted but empty."""
    disk = Disk(size_mb=250_000)
    disk.create_partition(150_000).format(FsType.NTFS, label="Node")
    disk.create_partition(100).format(FsType.EXT3, label="boot")
    disk.create_partition(99_000, PartitionKind.EXTENDED)
    disk.create_partition(512, PartitionKind.LOGICAL).format(FsType.SWAP)
    disk.create_partition(100, PartitionKind.LOGICAL).format(FsType.FAT, label="DB")
    disk.create_partition(98_000, PartitionKind.LOGICAL).format(FsType.EXT3)
    return disk


def test_install_linux_and_boot():
    disk = make_partitions()
    install_linux(disk, boot_partition=2, root_partition=7, swap_partition=5)
    outcome = resolve_boot(
        disk, Firmware.disk_first(), "02:00:5e:00:00:01", BootEnvironment()
    )
    assert outcome.os_name == "linux"
    assert outcome.root_partition == 7


def test_install_linux_requires_ext3_root():
    disk = make_partitions()
    with pytest.raises(ConfigurationError):
        install_linux(disk, boot_partition=2, root_partition=1)  # NTFS


def test_install_linux_no_mbr_leaves_disk_unbootable():
    disk = make_partitions()
    install_linux(disk, boot_partition=2, root_partition=7, mbr_grub=False)
    with pytest.raises(BootError):
        resolve_boot(
            disk, Firmware.disk_first(), "02:00:5e:00:00:01", BootEnvironment()
        )


def test_install_windows_rewrites_mbr_and_active():
    disk = make_partitions()
    install_linux(disk, boot_partition=2, root_partition=7)  # GRUB in MBR
    assert disk.mbr.boot_code.is_grub
    install_windows(disk, system_partition=1)
    assert disk.mbr.boot_code.loader == "windows"  # GRUB destroyed
    assert disk.active_partition.number == 1


def test_install_windows_requires_ntfs():
    disk = make_partitions()
    with pytest.raises(ConfigurationError):
        install_windows(disk, system_partition=7)


def test_install_windows_without_mbr_write_is_counterfactual_only():
    disk = make_partitions()
    install_linux(disk, boot_partition=2, root_partition=7)
    install_windows(disk, system_partition=1, write_mbr=False)
    assert disk.mbr.boot_code.is_grub  # preserved only in the ablation


def test_linux_from_disk_builds_mounts_from_fstab():
    disk = make_partitions()
    install_linux(
        disk, boot_partition=2, root_partition=7, swap_partition=5,
        extra_mounts={"/boot/swap": 6},
    )
    runtime = LinuxOS.from_disk("enode01", disk, root_partition=7)
    runtime.write("/boot/swap/flag", "x")
    assert disk.filesystem(6).read("/flag") == "x"
    runtime.write("/boot/marker", "y")
    assert disk.filesystem(2).read("/marker") == "y"
    runtime.write("/etc/other", "z")
    assert disk.filesystem(7).read("/etc/other") == "z"


def test_linux_from_disk_fails_without_fstab():
    disk = make_partitions()
    with pytest.raises(BootError, match="fstab"):
        LinuxOS.from_disk("enode01", disk, root_partition=7)


def test_linux_from_disk_fails_on_missing_mount_partition():
    disk = make_partitions()
    install_linux(disk, boot_partition=2, root_partition=7)
    fs = disk.filesystem(7)
    fs.write("/etc/fstab", fs.read("/etc/fstab") + "/dev/sda4 /data ext3 defaults 0 0\n")
    with pytest.raises(BootError, match="/data"):
        LinuxOS.from_disk("enode01", disk, root_partition=7)


def test_windows_drive_letter_translation():
    disk = make_partitions()
    install_windows(disk, system_partition=1)
    runtime = WindowsOS.from_disk("enode01", disk, system_partition=1)
    runtime.write(r"C:\Program Files\app\config.txt", "data")
    assert disk.filesystem(1).read("/Program Files/app/config.txt") == "data"
    assert runtime.exists("/Program Files/app/config.txt")  # unix form too


def test_windows_fat_partition_is_drive_d():
    disk = make_partitions()
    install_windows(disk, system_partition=1)
    disk.filesystem(6).write("/controlmenu.lst", "menu")
    runtime = WindowsOS.from_disk("enode01", disk, system_partition=1)
    assert runtime.read(r"D:\controlmenu.lst") == "menu"
