"""VFS mount routing, services and binaries on OSInstance."""

import pytest

from repro.errors import ConfigurationError, StorageError
from repro.oslayer import OSInstance, ServiceDef
from repro.storage import Filesystem, FsType


@pytest.fixture()
def os_instance():
    root = Filesystem(FsType.EXT3, label="root")
    boot = Filesystem(FsType.EXT3, label="boot")
    fat = Filesystem(FsType.FAT, label="DUALBOOT")
    return OSInstance(
        "linux", "enode01", {"/": root, "/boot": boot, "/boot/swap": fat}
    )


def test_requires_root_mount():
    with pytest.raises(ConfigurationError):
        OSInstance("linux", "x", {"/boot": Filesystem(FsType.EXT3)})


def test_longest_prefix_mount_routing(os_instance):
    os_instance.write("/etc/motd", "root fs")
    os_instance.write("/boot/vmlinuz", "boot fs")
    os_instance.write("/boot/swap/controlmenu.lst", "fat fs")
    fs_root, _ = os_instance.resolve("/etc/motd")
    fs_boot, rel_boot = os_instance.resolve("/boot/vmlinuz")
    fs_fat, rel_fat = os_instance.resolve("/boot/swap/controlmenu.lst")
    assert fs_root.label == "root"
    assert (fs_boot.label, rel_boot) == ("boot", "/vmlinuz")
    assert (fs_fat.label, rel_fat) == ("DUALBOOT", "/controlmenu.lst")


def test_mountpoint_itself_resolves(os_instance):
    fs, rel = os_instance.resolve("/boot/swap")
    assert fs.label == "DUALBOOT"
    assert rel == "/"


def test_sibling_prefix_not_confused(os_instance):
    # /boot2 is NOT under /boot
    fs, rel = os_instance.resolve("/boot2/file")
    assert fs.label == "root"
    assert rel == "/boot2/file"


def test_read_write_append_exists(os_instance):
    os_instance.write("/log", "a\n")
    os_instance.append("/log", "b\n")
    assert os_instance.read("/log") == "a\nb\n"
    assert os_instance.exists("/log")
    assert not os_instance.exists("/missing")


def test_append_creates_missing_file(os_instance):
    os_instance.append("/new", "line\n")
    assert os_instance.read("/new") == "line\n"


def test_rename_within_one_mount(os_instance):
    os_instance.write("/boot/swap/a.lst", "x")
    os_instance.rename("/boot/swap/a.lst", "/boot/swap/b.lst")
    assert os_instance.read("/boot/swap/b.lst") == "x"


def test_cross_mount_rename_rejected(os_instance):
    os_instance.write("/boot/swap/a.lst", "x")
    with pytest.raises(StorageError, match="cross-filesystem"):
        os_instance.rename("/boot/swap/a.lst", "/tmp/a.lst")


def test_services_start_stop_order(os_instance):
    log = []
    for name in ("first", "second"):
        os_instance.add_service(
            ServiceDef(
                name,
                on_start=lambda osi, n=name: log.append(f"start {n}"),
                on_stop=lambda osi, n=name: log.append(f"stop {n}"),
            )
        )
    os_instance.start()
    os_instance.stop()
    assert log == ["start first", "start second", "stop second", "stop first"]


def test_start_stop_idempotent(os_instance):
    count = []
    os_instance.add_service(ServiceDef("s", on_start=lambda o: count.append(1)))
    os_instance.start()
    os_instance.start()
    assert count == [1]
    os_instance.stop()
    os_instance.stop()


def test_service_added_while_running_starts_immediately(os_instance):
    os_instance.start()
    started = []
    os_instance.add_service(ServiceDef("late", on_start=lambda o: started.append(1)))
    assert started == [1]


def test_binaries_registry(os_instance):
    os_instance.register_binary("/usr/bin/tool", lambda osi, args: "ran " + args[0])
    fn = os_instance.find_binary("/usr/bin/tool")
    assert fn(os_instance, ["x"]) == "ran x"
    assert os_instance.find_binary("/usr/bin/other") is None
