"""Synthetic traces for the ``no-job-lost`` invariant.

These exercise the job-lifecycle state machine directly: legal lives
(including eviction-and-rerun after a fence) stay clean, and every
class of bookkeeping lie — resurrection after a terminal event, a start
from thin air, a fence whose evictions are never discharged — is
flagged.
"""

from repro.trace import INVARIANTS


def make_events(*specs):
    """Synthetic trace: each spec is (time, kind, node, fields)."""
    from repro.trace import TraceEvent

    return [
        TraceEvent(seq=i, time=t, kind=kind, node=node, fields=fields)
        for i, (t, kind, node, fields) in enumerate(specs)
    ]


def violations_of(events):
    return INVARIANTS["no-job-lost"](events)


def job(jobid, scheduler="pbs", **extra):
    return {"scheduler": scheduler, "jobid": jobid, **extra}


# -- clean lives --------------------------------------------------------------


def test_plain_life_is_clean():
    events = make_events(
        (0.0, "job.submitted", None, job("1.master")),
        (1.0, "job.started", None, job("1.master", hosts=["enode01"])),
        (100.0, "job.finished", None, job("1.master", exit_status=0)),
    )
    assert violations_of(events) == []


def test_eviction_and_rerun_is_clean():
    """The canonical resilience story: fence -> requeue -> rerun."""
    events = make_events(
        (0.0, "job.submitted", None, job("1.master")),
        (1.0, "job.started", None, job("1.master", hosts=["enode01"])),
        (50.0, "health.fenced", "enode01", {"misses": 5}),
        (50.0, "job.requeued", None, job("1.master", restarts=1)),
        (51.0, "job.started", None, job("1.master", hosts=["enode02"])),
        (151.0, "job.finished", None, job("1.master", exit_status=0)),
    )
    assert violations_of(events) == []


def test_terminal_failure_after_fence_is_clean():
    """A non-rerunnable job may die with the node — failed, not lost."""
    events = make_events(
        (0.0, "job.submitted", None, job("7")),
        (1.0, "job.started", None, job("7", hosts=["enode03"])),
        (40.0, "health.fenced", "enode03", {"misses": 5}),
        (40.0, "job.failed", None, job("7", exit_status=271)),
    )
    assert violations_of(events) == []


def test_still_queued_at_end_of_trace_is_clean():
    events = make_events(
        (0.0, "job.submitted", None, job("9")),
    )
    assert violations_of(events) == []


def test_same_jobid_on_both_schedulers_is_tracked_separately():
    events = make_events(
        (0.0, "job.submitted", None, job("3", scheduler="pbs")),
        (0.0, "job.submitted", None, job("3", scheduler="winhpc")),
        (1.0, "job.started", None, job("3", scheduler="pbs",
                                       hosts=["enode01"])),
        (2.0, "job.started", None, job("3", scheduler="winhpc",
                                       hosts=["enode02"])),
        (90.0, "job.finished", None, job("3", scheduler="pbs")),
        (95.0, "job.finished", None, job("3", scheduler="winhpc")),
    )
    assert violations_of(events) == []


def test_fence_resolved_by_finish_is_clean():
    """A fenced node's job that still manages to finish (e.g. it was
    reconciled on fast rejoin) discharges the fence obligation."""
    events = make_events(
        (0.0, "job.submitted", None, job("2")),
        (1.0, "job.started", None, job("2", hosts=["enode01.cluster"])),
        (30.0, "health.fenced", "enode01", {"misses": 5}),
        (130.0, "job.finished", None, job("2", exit_status=0)),
    )
    assert violations_of(events) == []


# -- violations ---------------------------------------------------------------


def test_event_after_terminal_is_flagged():
    events = make_events(
        (0.0, "job.submitted", None, job("1")),
        (1.0, "job.started", None, job("1", hosts=["enode01"])),
        (50.0, "job.failed", None, job("1", exit_status=271)),
        (60.0, "job.started", None, job("1", hosts=["enode02"])),
    )
    out = violations_of(events)
    assert len(out) == 1
    assert "after a terminal event" in out[0].message


def test_started_while_not_queued_is_flagged():
    events = make_events(
        (0.0, "job.submitted", None, job("1")),
        (1.0, "job.started", None, job("1", hosts=["enode01"])),
        (2.0, "job.started", None, job("1", hosts=["enode02"])),
    )
    out = violations_of(events)
    assert len(out) == 1
    assert "started while running" in out[0].message


def test_requeued_while_not_running_is_flagged():
    events = make_events(
        (0.0, "job.submitted", None, job("1")),
        (1.0, "job.requeued", None, job("1", restarts=1)),
    )
    out = violations_of(events)
    assert len(out) == 1
    assert "requeued while queued" in out[0].message


def test_submitted_twice_is_flagged():
    events = make_events(
        (0.0, "job.submitted", None, job("1")),
        (1.0, "job.submitted", None, job("1")),
    )
    out = violations_of(events)
    assert len(out) == 1
    assert "submitted twice" in out[0].message


def test_started_without_submit_is_flagged():
    events = make_events(
        (1.0, "job.started", None, job("1", hosts=["enode01"])),
        (90.0, "job.finished", None, job("1")),
    )
    out = violations_of(events)
    assert "before job.submitted" in out[0].message


def test_job_lost_on_fenced_node_is_flagged():
    """The headline case: a fence hits a running job and the scheduler
    never requeues, fails, or finishes it — the job simply vanishes."""
    events = make_events(
        (0.0, "job.submitted", None, job("1")),
        (1.0, "job.started", None, job("1", hosts=["enode01"])),
        (50.0, "health.fenced", "enode01", {"misses": 5}),
    )
    out = violations_of(events)
    assert len(out) == 1
    assert "never requeued, failed, or finished" in out[0].message
    assert "enode01" in out[0].message


def test_fence_of_idle_node_imposes_no_obligation():
    events = make_events(
        (0.0, "job.submitted", None, job("1")),
        (1.0, "job.started", None, job("1", hosts=["enode01"])),
        (50.0, "health.fenced", "enode02", {"misses": 5}),
    )
    assert violations_of(events) == []


def test_registered_in_battery():
    assert "no-job-lost" in INVARIANTS
