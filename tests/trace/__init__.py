"""Tests for the structured event tracing subsystem (repro.trace)."""
