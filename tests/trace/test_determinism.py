"""Determinism regression battery: every experiment, run twice.

The whole reproduction rests on the claim that a (seed, scenario) pair
pins the simulation completely.  Aggregate-metric equality (what E9's
own ``deterministic`` headline checks) can mask compensating
differences; byte-identical *event traces* cannot.  Each experiment is
run twice with the same seed and every attached trace's canonical JSONL
export must match byte for byte — and be invariant-clean both times.
"""

import importlib
import re

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.trace import check_events

SEED = 3

# the simulation experiments (e1..e11, e14, e15); the figure/table
# reproductions in the registry are pure artefact generators and attach
# no traces
SIMULATION_EXPERIMENTS = sorted(
    k for k in ALL_EXPERIMENTS if re.fullmatch(r"e\d+", k)
)


def _run(experiment_id):
    module = importlib.import_module(ALL_EXPERIMENTS[experiment_id])
    return module.run(seed=SEED, quick=True)


def test_battery_covers_all_simulation_experiments():
    assert SIMULATION_EXPERIMENTS == sorted(
        [f"e{i}" for i in range(1, 12)] + ["e14", "e15"]
    )


# -- trace_mode cross-checks -------------------------------------------------
#
# The pay-as-you-go tracer ("counts"/"off" modes) must be a pure
# observer: turning recording down or off cannot perturb the simulation.
# Proof: the identical (seed, scenario) pair is driven through the full
# middleware stack once per mode and every scheduler-visible outcome
# (the whole ScenarioResult) must be equal — and a "full" run *after*
# the cheap-mode runs must export byte-for-byte what a fresh "full" run
# exports.


def _cross_mode_run(trace_mode):
    from repro.compare import HybridSystem, run_scenario
    from repro.core.config import MiddlewareConfig, TraceConfig
    from repro.simkernel import HOUR, MINUTE
    from repro.workloads import MixedWorkload

    horizon = 4 * HOUR
    system = HybridSystem(
        num_nodes=8, seed=SEED, version=2,
        config=MiddlewareConfig(
            version=2, check_cycle_s=10 * MINUTE,
            trace=TraceConfig(mode=trace_mode),
        ),
    )
    jobs = MixedWorkload(
        seed=SEED, rate_per_hour=6.0, windows_fraction=0.5,
        horizon_s=horizon, max_cores=16, runtime_scale=0.25,
    ).generate()
    result = run_scenario(system, jobs, horizon)
    return system.middleware.tracer, result


def test_trace_mode_does_not_perturb_the_simulation():
    full_tracer, full_result = _cross_mode_run("full")
    counts_tracer, counts_result = _cross_mode_run("counts")
    off_tracer, off_result = _cross_mode_run("off")

    # identical scheduler-visible outcomes in every mode
    assert counts_result == full_result
    assert off_result == full_result

    # "counts" keeps the exact per-kind tallies of a full run, minus events
    assert counts_tracer.mode == "counts"
    assert dict(counts_tracer.counts) == dict(full_tracer.counts)
    assert counts_tracer.events == []
    assert counts_tracer.export_jsonl() == ""

    # "off" records nothing at all
    assert off_tracer.events == []
    assert dict(off_tracer.counts) == {}

    # and a full-mode re-run after the cheap modes replays byte-identically
    replay_tracer, replay_result = _cross_mode_run("full")
    assert replay_result == full_result
    assert replay_tracer.export_jsonl() == full_tracer.export_jsonl()
    assert replay_tracer.export_jsonl()  # non-empty: the proof has teeth


@pytest.mark.parametrize("experiment_id", SIMULATION_EXPERIMENTS)
def test_same_seed_twice_gives_byte_identical_traces(experiment_id):
    first = _run(experiment_id)
    second = _run(experiment_id)

    assert first.traces, f"{experiment_id} attached no traces"
    assert first.trace_exports().keys() == second.trace_exports().keys()
    for label, export in first.trace_exports().items():
        assert export, f"{experiment_id} trace {label!r} is empty"
        assert export == second.trace_exports()[label], (
            f"{experiment_id} trace {label!r} differs between same-seed runs"
        )

    for label, tracer in first.traces.items():
        violations = check_events(tracer.events)
        assert violations == [], (
            f"{experiment_id} trace {label!r} violates invariants: "
            + "; ".join(str(v) for v in violations)
        )
