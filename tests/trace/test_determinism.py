"""Determinism regression battery: every experiment, run twice.

The whole reproduction rests on the claim that a (seed, scenario) pair
pins the simulation completely.  Aggregate-metric equality (what E9's
own ``deterministic`` headline checks) can mask compensating
differences; byte-identical *event traces* cannot.  Each experiment is
run twice with the same seed and every attached trace's canonical JSONL
export must match byte for byte — and be invariant-clean both times.
"""

import importlib
import re

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.trace import check_events

SEED = 3

# the simulation experiments (e1..e11, e14); the figure/table
# reproductions in the registry are pure artefact generators and attach
# no traces
SIMULATION_EXPERIMENTS = sorted(
    k for k in ALL_EXPERIMENTS if re.fullmatch(r"e\d+", k)
)


def _run(experiment_id):
    module = importlib.import_module(ALL_EXPERIMENTS[experiment_id])
    return module.run(seed=SEED, quick=True)


def test_battery_covers_all_simulation_experiments():
    assert SIMULATION_EXPERIMENTS == sorted(
        [f"e{i}" for i in range(1, 12)] + ["e14"]
    )


@pytest.mark.parametrize("experiment_id", SIMULATION_EXPERIMENTS)
def test_same_seed_twice_gives_byte_identical_traces(experiment_id):
    first = _run(experiment_id)
    second = _run(experiment_id)

    assert first.traces, f"{experiment_id} attached no traces"
    assert first.trace_exports().keys() == second.trace_exports().keys()
    for label, export in first.trace_exports().items():
        assert export, f"{experiment_id} trace {label!r} is empty"
        assert export == second.trace_exports()[label], (
            f"{experiment_id} trace {label!r} differs between same-seed runs"
        )

    for label, tracer in first.traces.items():
        violations = check_events(tracer.events)
        assert violations == [], (
            f"{experiment_id} trace {label!r} violates invariants: "
            + "; ".join(str(v) for v in violations)
        )
