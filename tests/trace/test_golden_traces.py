"""Golden-trace snapshot tests.

One tiny v1 and one tiny v2 scenario each drive a full switch cycle
(Windows job stuck -> switch order -> reboot -> confirm) on a 2-node
cluster; their canonical JSONL exports are checked in under
``tests/fixtures/``.  Any change to event kinds, field names, emission
points, or control-plane timing shows up here as a readable diff.

To regenerate after an intentional change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/trace/test_golden_traces.py
"""

import difflib
import os

import pytest

from repro.core import MiddlewareConfig, build_hybrid_cluster
from repro.simkernel import MINUTE
from repro.trace import check_events

from tests.fixtures import golden_trace_path, load_golden_trace

REGEN = os.environ.get("REPRO_REGEN_GOLDEN") == "1"


def golden_scenario(version: int):
    """The checked-in scenario: one stuck Windows job forces one switch."""
    hybrid = build_hybrid_cluster(
        num_nodes=2, seed=7, version=version,
        config=MiddlewareConfig(version=version, check_cycle_s=5 * MINUTE),
    )
    hybrid.deploy()
    hybrid.wait_for_nodes()
    hybrid.submit_windows_job("mdcs", cores=4, runtime_s=5 * MINUTE)
    hybrid.sim.run(until=hybrid.sim.now + 40 * MINUTE)
    return hybrid


@pytest.mark.parametrize("version", [1, 2])
def test_golden_trace_matches_fixture(version):
    hybrid = golden_scenario(version)
    export = hybrid.tracer.export_jsonl()
    path = golden_trace_path(version)

    if REGEN:
        path.write_text(export, encoding="ascii")
        pytest.skip(f"regenerated {path.name} ({len(export.splitlines())} events)")

    assert path.exists(), (
        f"{path.name} missing — run with REPRO_REGEN_GOLDEN=1 to create it"
    )
    golden = load_golden_trace(version)
    if export != golden:
        diff = "\n".join(difflib.unified_diff(
            golden.splitlines(), export.splitlines(),
            fromfile=f"golden_trace_v{version}.jsonl", tofile="fresh run",
            lineterm="", n=2,
        ))
        pytest.fail(
            f"v{version} trace diverged from the golden fixture "
            f"(REPRO_REGEN_GOLDEN=1 to accept):\n{diff}"
        )


@pytest.mark.parametrize("version", [1, 2])
def test_golden_scenario_is_clean_and_complete(version):
    """The golden runs themselves satisfy every invariant and actually
    exercise the full switch cycle (so the fixtures are worth keeping)."""
    hybrid = golden_scenario(version)
    events = hybrid.tracer.events
    assert check_events(events) == []
    kinds = {e.kind for e in events}
    assert "order.issued" in kinds
    assert "order.confirmed" in kinds
    assert "boot.start" in kinds and "boot.complete" in kinds
    assert "control.decision" in kinds


@pytest.mark.parametrize("version", [1, 2])
def test_golden_fixture_passes_invariants(version):
    """The checked-in JSONL itself round-trips and is invariant-clean."""
    if not golden_trace_path(version).exists():
        pytest.skip("fixture not generated yet")
    from repro.trace import Tracer, check_jsonl

    text = load_golden_trace(version)
    assert check_jsonl(text) == []
    events = Tracer.load_jsonl(text)
    assert events, "golden trace must not be empty"
    # the export is canonical: re-serialising reproduces it byte-for-byte
    assert "".join(e.to_json() + "\n" for e in events) == text
