"""Trace invariants: positive cases, tampered traces, and a seeded bug.

Three layers:

* synthetic traces exercise each invariant's detection logic directly;
* a real golden-scenario trace is *tampered* (events deleted) and the
  relevant invariant must notice;
* a deliberately buggy communicator tick (the staleness guard removed —
  exactly the bug the hardening PR fixed) runs in the hardening rig and
  the ``decision-freshness`` invariant must flag it, while the stock
  tick stays clean.  This is the negative test the battery exists for.
"""

import pytest

from repro.core.communicator import (
    LinuxCommunicator,
    SwitchOrders,
    WindowsCommunicator,
)
from repro.core.controller import DualBootMenuSpec
from repro.core.controller_v2 import ControllerV2
from repro.core.detector import PbsDetector, WinHpcDetector
from repro.core.policy import FcfsPolicy
from repro.netsvc import DhcpServer, Network, TftpServer
from repro.pbs import PbsCommands, PbsServer
from repro.simkernel import MINUTE, Simulator
from repro.simkernel.rng import RngStreams
from repro.storage import Filesystem, FsType
from repro.trace import INVARIANTS, Tracer, Violation, check_events, check_jsonl
from repro.winhpc import HpcSchedulerConnection, WinHpcScheduler


def make_events(*specs):
    """Synthetic trace: each spec is (time, kind, node, fields)."""
    from repro.trace import TraceEvent

    return [
        TraceEvent(seq=i, time=t, kind=kind, node=node, fields=fields)
        for i, (t, kind, node, fields) in enumerate(specs)
    ]


def violations_of(name, events):
    return INVARIANTS[name](events)


# -- registry -----------------------------------------------------------------


def test_at_least_five_distinct_invariants_registered():
    assert len(INVARIANTS) >= 5
    assert {"monotonic-time", "confirmed-order-has-boot",
            "decision-freshness", "os-change-has-boot-chain",
            "received-was-sent"} <= set(INVARIANTS)


def test_violation_str_mentions_invariant_and_event():
    v = Violation(invariant="x-inv", message="broke", seq=4, time=2.0)
    assert "x-inv" in str(v) and "#4" in str(v)


def test_empty_trace_is_clean():
    assert check_events([]) == []
    assert check_jsonl("") == []


# -- synthetic positive/negative cases per invariant --------------------------


def test_monotonic_time_flags_backwards_clock():
    good = make_events((0.0, "a", None, {}), (1.0, "b", None, {}))
    bad = make_events((5.0, "a", None, {}), (1.0, "b", None, {}))
    assert violations_of("monotonic-time", good) == []
    assert len(violations_of("monotonic-time", bad)) == 1


def test_confirmed_order_requires_matching_boot():
    issue = (0.0, "order.issued", None, {"order_id": 1, "target_os": "windows"})
    boot = (60.0, "boot.complete", "n1", {"os": "windows", "via": "grub"})
    confirm = (60.0, "order.confirmed", "n1",
               {"order_id": 1, "target_os": "windows"})
    assert violations_of(
        "confirmed-order-has-boot", make_events(issue, boot, confirm)) == []
    # no boot at all
    assert len(violations_of(
        "confirmed-order-has-boot", make_events(issue, confirm))) == 1
    # boot into the WRONG os
    wrong = (60.0, "boot.complete", "n1", {"os": "linux", "via": "grub"})
    assert len(violations_of(
        "confirmed-order-has-boot", make_events(issue, wrong, confirm))) == 1
    # boot on a DIFFERENT node
    other = (60.0, "boot.complete", "n2", {"os": "windows", "via": "grub"})
    assert len(violations_of(
        "confirmed-order-has-boot", make_events(issue, other, confirm))) == 1
    # confirmed but never issued
    assert len(violations_of(
        "confirmed-order-has-boot", make_events(boot, confirm))) == 1


def test_confirm_at_same_instant_as_boot_complete_is_legal():
    """Scheduler join (-> confirm) fires while the OS starts, a hair
    before boot.complete at the same sim time — must not be flagged."""
    events = make_events(
        (0.0, "order.issued", None, {"order_id": 1, "target_os": "linux"}),
        (90.0, "order.confirmed", "n1", {"order_id": 1, "target_os": "linux"}),
        (90.0, "boot.complete", "n1", {"os": "linux", "via": "pxe"}),
    )
    assert violations_of("confirmed-order-has-boot", events) == []


def test_decision_freshness_flags_stale_consumption():
    fresh = (0.0, "control.decision", "h",
             {"report_age_s": 30.0, "staleness_cap_s": 1200.0})
    stale = (0.0, "control.decision", "h",
             {"report_age_s": 1500.0, "staleness_cap_s": 1200.0})
    uncapped = (0.0, "control.decision", "h", {"action": "hold"})
    assert violations_of("decision-freshness", make_events(fresh)) == []
    assert violations_of("decision-freshness", make_events(uncapped)) == []
    assert len(violations_of("decision-freshness", make_events(stale))) == 1


def test_os_up_outside_boot_span_is_flagged():
    good = make_events(
        (0.0, "boot.start", "n1", {"cold": True}),
        (60.0, "node.os_up", "n1", {"os": "linux"}),
        (60.0, "boot.complete", "n1", {"os": "linux", "via": "grub"}),
    )
    ghost = make_events((60.0, "node.os_up", "n1", {"os": "linux"}))
    after_close = make_events(
        (0.0, "boot.start", "n1", {}),
        (50.0, "boot.failed", "n1", {}),
        (60.0, "node.os_up", "n1", {"os": "linux"}),
    )
    assert violations_of("os-change-has-boot-chain", good) == []
    assert len(violations_of("os-change-has-boot-chain", ghost)) == 1
    assert len(violations_of("os-change-has-boot-chain", after_close)) == 1


def test_received_wire_must_have_been_sent():
    sent = (0.0, "comm.report_sent", "w", {"wire": "00000none", "attempt": 0})
    ok = (1.0, "comm.report_received", "l",
          {"wire": "00000none", "via": "network"})
    forged = (1.0, "comm.report_received", "l",
              {"wire": "10004evil", "via": "network"})
    direct = (1.0, "comm.report_received", "l",
              {"wire": "10004evil", "via": "direct"})
    assert violations_of("received-was-sent", make_events(sent, ok)) == []
    assert len(violations_of("received-was-sent",
                             make_events(sent, forged))) == 1
    # in-process handle() calls are exempt: nothing was ever on the wire
    assert violations_of("received-was-sent", make_events(direct)) == []


def test_order_lifecycle_rejects_double_issue_and_double_resolve():
    i1 = (0.0, "order.issued", None, {"order_id": 1})
    c1 = (10.0, "order.confirmed", "n1", {"order_id": 1})
    f1 = (20.0, "order.failed", None, {"order_id": 1})
    assert violations_of("order-lifecycle", make_events(i1, c1)) == []
    assert len(violations_of("order-lifecycle", make_events(i1, i1))) == 1
    assert len(violations_of("order-lifecycle", make_events(i1, c1, f1))) == 1
    assert len(violations_of("order-lifecycle", make_events(c1))) == 1


def test_fault_before_arm_is_flagged():
    arm = (10.0, "fault.armed", None, {"plan": "p"})
    early = (5.0, "fault.loss", None, {"plan": "p"})
    late = (15.0, "fault.loss", None, {"plan": "p"})
    assert violations_of("fault-after-arm", make_events(arm, late)) == []
    assert len(violations_of("fault-after-arm", make_events(early, arm))) == 1
    assert len(violations_of("fault-after-arm", make_events(late))) == 1


# -- tampered real traces -----------------------------------------------------


@pytest.fixture(scope="module")
def real_trace():
    from tests.trace.test_golden_traces import golden_scenario

    return golden_scenario(2).tracer.events


def test_real_trace_is_clean(real_trace):
    assert check_events(real_trace) == []


def test_deleting_boot_completes_breaks_confirmed_order(real_trace):
    tampered = [e for e in real_trace if e.kind != "boot.complete"]
    names = {v.invariant for v in check_events(tampered)}
    assert "confirmed-order-has-boot" in names


def test_deleting_boot_spans_breaks_os_chain(real_trace):
    tampered = [e for e in real_trace if e.kind != "boot.start"]
    names = {v.invariant for v in check_events(tampered)}
    assert "os-change-has-boot-chain" in names


def test_forging_a_received_wire_is_caught(real_trace):
    from repro.trace import TraceEvent

    received = next(e for e in real_trace
                    if e.kind == "comm.report_received"
                    and e.fields.get("via") == "network")
    forged = TraceEvent(
        seq=received.seq, time=received.time, kind=received.kind,
        node=received.node, cycle=received.cycle, cause=received.cause,
        fields={**received.fields, "wire": "10004never-sent"},
    )
    tampered = [forged if e is received else e for e in real_trace]
    names = {v.invariant for v in check_events(tampered)}
    assert "received-was-sent" in names


# -- the seeded bug: a communicator without the staleness guard ---------------

CYCLE = 10 * MINUTE


class _UnguardedLinuxCommunicator(LinuxCommunicator):
    """The pre-hardening bug, reintroduced on purpose: the heartbeat
    re-evaluates the last Windows state no matter how old it is."""

    def tick(self):
        if self.last_windows_state is None or self.cycle_s is None:
            return
        # BUG: no staleness-cap check before consuming the report
        self._evaluate(self.last_windows_state, self.last_windows_wire)


def control_rig(tracer, linux_cls):
    """The hardening-test rig (no nodes), with a pluggable Linux side."""
    sim = tracer.sim
    network = Network(sim)
    linhead = network.register("eridani")
    winhead = network.register("winhead")
    pbs = PbsServer(sim)
    winhpc = WinHpcScheduler(sim)
    for i in range(1, 5):
        pbs.create_node(f"enode{i:02d}", np=4)
        pbs.node_up(f"enode{i:02d}")
        winhpc.add_node(f"enode{i:02d}", cores=4)
    controller = ControllerV2(
        DualBootMenuSpec(boot_partition=2, root_partition=6),
        tftp=TftpServer(Filesystem(FsType.EXT3)),
        dhcp=DhcpServer(),
    )
    controller.prepare_cluster()
    orders = SwitchOrders(pbs, winhpc, controller,
                          order_timeout_s=15 * MINUTE, tracer=tracer)
    linux = linux_cls(
        sim=sim,
        listener=linhead.listen(5800),
        detector=PbsDetector(PbsCommands(pbs)),
        policy=FcfsPolicy(),
        orders=orders,
        cores_per_node=4,
        host=linhead,
        ack_port=5801,
        cycle_s=CYCLE,
        staleness_cycles=2,
        tracer=tracer,
    )
    sdk = HpcSchedulerConnection()
    sdk.connect(winhpc)
    windows = WindowsCommunicator(
        sim=sim,
        host=winhead,
        detector=WinHpcDetector(sdk),
        linux_head="eridani",
        port=5800,
        cycle_s=CYCLE,
        ack_listener=winhead.listen(5801),
        max_retries=2,
        retry_base_s=5.0,
        ack_timeout_s=10.0,
        rng=RngStreams(11).spawn("communicator"),
        tracer=tracer,
    )
    return linux, windows, linhead


def _run_with_silent_windows(linux_cls):
    """One report arrives, then the Windows head goes silent for hours
    while the Linux heartbeat keeps ticking."""
    sim = Simulator()
    tracer = Tracer(sim, name="seeded-bug")
    linux, windows, linhead = control_rig(tracer, linux_cls)
    sim.spawn(linux.run())
    sim.spawn(windows.run())

    def silence():
        # delivery drops on the *destination*: every later report from the
        # Windows head is lost before the Linux listener sees it
        linhead.online = False

    sim.schedule_at(1 * MINUTE, silence)

    def heartbeat():
        while True:
            yield sim.timeout(CYCLE)
            linux.tick()

    sim.spawn(heartbeat(), name="heartbeat")
    sim.run(until=3 * 60 * MINUTE)
    return tracer


def test_seeded_staleness_bug_is_caught_by_the_invariant():
    tracer = _run_with_silent_windows(_UnguardedLinuxCommunicator)
    violations = check_events(tracer.events)
    names = {v.invariant for v in violations}
    assert "decision-freshness" in names
    # the report only ages — every tick past the cap is a fresh breach
    assert sum(v.invariant == "decision-freshness" for v in violations) >= 2
    # and the JSONL path agrees with the in-memory path
    jsonl_names = {v.invariant for v in check_jsonl(tracer.export_jsonl())}
    assert "decision-freshness" in jsonl_names


def test_stock_communicator_stays_clean_under_the_same_silence():
    tracer = _run_with_silent_windows(LinuxCommunicator)
    assert check_events(tracer.events) == []
    # it refused, rather than decided: stale skips must be in the trace
    assert tracer.events_of("comm.stale_skip")
