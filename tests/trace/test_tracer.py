"""Unit tests for TraceEvent / Tracer: canonical JSONL, querying, gating."""

import json

import pytest

from repro.simkernel import Simulator
from repro.trace import TraceEvent, Tracer, callback_name
from repro.trace.tracer import merge_events


@pytest.fixture()
def sim():
    return Simulator()


# -- TraceEvent serialisation -------------------------------------------------


def test_event_to_dict_drops_empty_optionals(sim):
    event = TraceEvent(seq=0, time=1.5, kind="order.issued")
    assert event.to_dict() == {"seq": 0, "t": 1.5, "kind": "order.issued"}


def test_event_json_is_canonical():
    event = TraceEvent(
        seq=3, time=2.0, kind="boot.complete", node="enode01",
        fields={"os": "linux", "via": "pxe"},
    )
    line = event.to_json()
    # compact separators, sorted keys, no unicode escapes needed
    assert line == json.dumps(json.loads(line), sort_keys=True,
                              separators=(",", ":"))
    assert TraceEvent.from_json(line) == event


def test_event_roundtrip_preserves_all_fields():
    event = TraceEvent(
        seq=9, time=600.0, kind="order.failed", node="enode02",
        cycle=4, cause="watchdog deadline passed",
        fields={"order_id": 2, "target_os": "windows"},
    )
    assert TraceEvent.from_json(event.to_json()) == event


def test_non_jsonable_fields_coerced_to_str(sim):
    tracer = Tracer(sim)
    tracer.emit("x", obj=object(), nums=(1, 2))
    decoded = json.loads(tracer.events[-1].to_json())
    assert isinstance(decoded["fields"]["obj"], str)
    assert decoded["fields"]["nums"] == [1, 2]


def test_callback_name_never_embeds_addresses():
    # repr(bound method) contains "0x..." which would break byte-identical
    # exports across runs; callback_name must not
    class Thing:
        def method(self):  # pragma: no cover - never called
            pass

    name = callback_name(Thing().method)
    assert "0x" not in name
    assert "method" in name
    assert callback_name(lambda: None)  # lambdas get *some* stable name


# -- Tracer recording ---------------------------------------------------------


def test_emit_stamps_sim_time_and_sequences(sim):
    tracer = Tracer(sim)
    tracer.emit("a.one")
    sim.schedule_at(10.0, lambda: tracer.emit("a.two", node="n1", extra=7))
    sim.run()
    assert [e.seq for e in tracer.events] == [0, 1]
    assert [e.time for e in tracer.events] == [0.0, 10.0]
    assert tracer.events[1].node == "n1"
    assert tracer.events[1].fields == {"extra": 7}


def test_disabled_tracer_records_nothing(sim):
    tracer = Tracer(sim)
    tracer.enabled = False
    assert tracer.emit("a.one") is None
    assert tracer.events == []
    assert tracer.counts == {}


def test_events_of_and_prefix_queries(sim):
    tracer = Tracer(sim)
    for kind in ("boot.start", "boot.complete", "order.issued", "boot.start"):
        tracer.emit(kind)
    assert len(tracer.events_of("boot.start")) == 2
    assert len(tracer.events_of("boot.start", "order.issued")) == 3
    assert len(tracer.events_with_prefix("boot.")) == 3
    assert tracer.summary() == {
        "boot.complete": 1, "boot.start": 2, "order.issued": 1,
    }


def test_kernel_events_gated_by_flag():
    sim = Simulator()
    quiet = Tracer(sim)
    sim.tracer = quiet

    def proc():
        yield sim.timeout(5.0)

    sim.spawn(proc(), name="p")
    sim.run()
    assert quiet.events_with_prefix("kernel.") == []

    sim2 = Simulator()
    chatty = Tracer(sim2, kernel_events=True)
    sim2.tracer = chatty

    def proc2():
        yield sim2.timeout(5.0)

    sim2.spawn(proc2(), name="p")
    sim2.run()
    kinds = {e.kind for e in chatty.events_with_prefix("kernel.")}
    assert kinds == {"kernel.spawn", "kernel.fire", "kernel.timeout"}


# -- export / import ----------------------------------------------------------


def test_jsonl_export_roundtrip(sim, tmp_path):
    tracer = Tracer(sim)
    tracer.emit("a.one", node="n", val=1.5)
    tracer.emit("a.two", cause="because")
    text = tracer.export_jsonl()
    assert text.count("\n") == 2
    assert Tracer.load_jsonl(text) == tracer.events

    path = tmp_path / "trace.jsonl"
    tracer.write_jsonl(path)
    assert Tracer.read_jsonl(path) == tracer.events


def test_merge_events_orders_by_time_then_seq(sim):
    a, b = Tracer(sim, name="a"), Tracer(sim, name="b")
    a.emit("x")
    sim.schedule_at(5.0, lambda: b.emit("y"))
    sim.schedule_at(9.0, lambda: a.emit("z"))
    sim.run()
    merged = merge_events([a, b])
    assert [e.kind for e in merged] == ["x", "y", "z"]
