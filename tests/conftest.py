"""Shared test fixtures and factories.

``make_v1_disk`` builds the Eridani v1 on-disk layout (Figures 2–3):
sda1 Windows NTFS (installed), sda2 /boot ext3 (kernel + GRUB files),
sda5 swap, sda6 FAT control partition, sda7 Linux root — with GRUB in
the MBR redirecting to the FAT ``controlmenu.lst``.
"""

import pytest

from repro.boot.chain import GRUB_MENU_PATH, LINUX_ROOT_MARKER
from repro.boot.windowsboot import WINDOWS_BOOT_MARKER, WINDOWS_SYSTEM_MARKER
from repro.storage import Disk, FsType, PartitionKind
from repro.storage.mbr import BootCode

MENU_LST_FIG2 = """\
default=0
timeout=5
splashimage=(hd0,1)/grub/splash.xpm.gz
hiddenmenu

title changing to control file
root (hd0,5)
configfile /controlmenu.lst
"""

CONTROLMENU_FIG3 = """\
default 0
timeout=10
splashimage=(hd0,1)/grub/splash.xpm.gz

title CentOS-5.4_Oscar-5b2-linux
root (hd0,1)
kernel /vmlinuz-2.6.18-164.el5 ro root=/dev/sda7 enforcing=0
initrd /sc-initrd-2.6.18-164.el5.gz

title Win_Server_2K8_R2-windows
rootnoverify (hd0,0)
chainloader +1
"""


def install_windows_markers(fs):
    fs.write(WINDOWS_BOOT_MARKER, "bootmgr")
    fs.write(WINDOWS_SYSTEM_MARKER, "ntoskrnl")


def install_linux_markers(bootfs, rootfs):
    bootfs.write("/vmlinuz-2.6.18-164.el5", "kernel-image")
    bootfs.write("/sc-initrd-2.6.18-164.el5.gz", "initrd-image")
    bootfs.write("/grub/splash.xpm.gz", "splash")
    bootfs.write("/grub/stage2", "stage2")
    rootfs.write(LINUX_ROOT_MARKER, "/dev/sda7 / ext3 defaults 0 1")


def make_v1_disk(default_os: str = "linux") -> Disk:
    """A fully deployed v1 dual-boot disk."""
    disk = Disk(size_mb=250_000)
    win = disk.create_partition(150_000)
    winfs = win.format(FsType.NTFS, label="Node")
    install_windows_markers(winfs)
    disk.set_active(1)

    boot = disk.create_partition(100)
    bootfs = boot.format(FsType.EXT3, label="boot")
    disk.create_partition(99_000, PartitionKind.EXTENDED)
    disk.create_partition(512, PartitionKind.LOGICAL).format(FsType.SWAP)
    fat = disk.create_partition(100, PartitionKind.LOGICAL)
    fatfs = fat.format(FsType.FAT, label="DUALBOOT")
    root = disk.create_partition(98_000, PartitionKind.LOGICAL)
    rootfs = root.format(FsType.EXT3, label="root")
    install_linux_markers(bootfs, rootfs)

    bootfs.write(GRUB_MENU_PATH, MENU_LST_FIG2)
    control = CONTROLMENU_FIG3
    if default_os == "windows":
        control = control.replace("default 0", "default 1", 1)
    fatfs.write("/controlmenu.lst", control)
    fatfs.write("/controlmenu_to_linux.lst", CONTROLMENU_FIG3)
    fatfs.write(
        "/controlmenu_to_windows.lst",
        CONTROLMENU_FIG3.replace("default 0", "default 1", 1),
    )

    disk.install_mbr(BootCode(BootCode.GRUB, config_partition=2))
    return disk


@pytest.fixture()
def v1_disk():
    return make_v1_disk()
