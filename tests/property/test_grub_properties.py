"""Property-based tests for menu.lst parse/render round-trips."""

import string

from hypothesis import given, strategies as st

from repro.boot.grubcfg import GrubConfig, GrubEntry, parse_grub_config, render_grub_config

title_text = st.text(
    alphabet=string.ascii_letters + string.digits + "._- ",
    min_size=1,
    max_size=40,
).filter(lambda s: s.strip() == s and s)

linux_entry = st.builds(
    lambda title, boot, root: GrubEntry(
        title=title + "-linux",
        commands=[
            ("root", f"(hd0,{boot})"),
            ("kernel", f"/vmlinuz ro root=/dev/sda{root}"),
            ("initrd", "/initrd.gz"),
        ],
    ),
    title=title_text,
    boot=st.integers(min_value=0, max_value=7),
    root=st.integers(min_value=1, max_value=9),
)

windows_entry = st.builds(
    lambda title, part: GrubEntry(
        title=title + "-windows",
        commands=[("rootnoverify", f"(hd0,{part})"), ("chainloader", "+1")],
    ),
    title=title_text,
    part=st.integers(min_value=0, max_value=3),
)

configs = st.builds(
    lambda entries, timeout, hidden, default: GrubConfig(
        default=default % max(1, len(entries)),
        timeout=timeout,
        hiddenmenu=hidden,
        entries=entries,
    ),
    entries=st.lists(st.one_of(linux_entry, windows_entry), min_size=1, max_size=5),
    timeout=st.one_of(st.none(), st.integers(min_value=0, max_value=60)),
    hidden=st.booleans(),
    default=st.integers(min_value=0, max_value=100),
)


@given(config=configs, style=st.sampled_from(["=", " "]))
def test_parse_render_roundtrip(config, style):
    text = render_grub_config(config, default_style=style)
    back = parse_grub_config(text)
    assert back.default == config.default
    assert back.timeout == config.timeout
    assert back.hiddenmenu == config.hiddenmenu
    assert [e.title for e in back.entries] == [e.title for e in config.entries]
    assert [e.commands for e in back.entries] == [
        e.commands for e in config.entries
    ]


@given(config=configs)
def test_default_entry_always_resolvable(config):
    # our builder keeps default in range; default_entry must never raise
    entry = config.default_entry()
    assert entry is config.entries[config.default]


@given(config=configs, target=st.sampled_from(["linux", "windows"]))
def test_switch_grub_default_idempotent(config, target):
    from repro.core.bootcontrol import switch_grub_default
    from repro.errors import BootError

    text = render_grub_config(config, default_style=" ")
    try:
        once = switch_grub_default(text, target)
    except BootError:
        # no entry with that OS tag in this generated config
        return
    twice = switch_grub_default(once, target)
    assert once == twice
    selected = parse_grub_config(once).default_entry()
    assert selected.title.endswith(f"-{target}")
