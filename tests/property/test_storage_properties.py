"""Property-based tests for partition-table invariants."""

from hypothesis import given, settings, strategies as st

from repro.errors import StorageError
from repro.storage import Disk, FsType, PartitionKind
from repro.storage.filesystem import normalize

# random operation streams against a disk
op = st.one_of(
    st.tuples(st.just("primary"), st.floats(min_value=1, max_value=100_000)),
    st.tuples(st.just("extended"), st.floats(min_value=1, max_value=100_000)),
    st.tuples(st.just("logical"), st.floats(min_value=1, max_value=50_000)),
    st.tuples(st.just("delete"), st.integers(min_value=1, max_value=8)),
    st.tuples(st.just("format"), st.integers(min_value=1, max_value=8)),
)


def check_invariants(disk: Disk) -> None:
    parts = disk.partitions
    outer = [p for p in parts if p.kind is not PartitionKind.LOGICAL]
    logical = [p for p in parts if p.kind is PartitionKind.LOGICAL]
    # 1. outer partitions never overlap each other
    for i, a in enumerate(outer):
        for b in outer[i + 1:]:
            assert not a.overlaps(b), (a, b)
    # 2. outer partitions stay on the disk
    for p in outer:
        assert 0 <= p.start_mb and p.end_mb <= disk.size_mb + 1e-6
    # 3. logicals never overlap and live inside the extended container
    ext = disk.extended
    for i, a in enumerate(logical):
        assert ext is not None
        assert ext.start_mb - 1e-6 <= a.start_mb
        assert a.end_mb <= ext.end_mb + 1e-6
        for b in logical[i + 1:]:
            assert not a.overlaps(b)
    # 4. numbering: primaries/extended in 1..4, logicals from 5, unique
    numbers = [p.number for p in parts]
    assert len(numbers) == len(set(numbers))
    for p in outer:
        assert 1 <= p.number <= 4
    for p in logical:
        assert p.number >= 5
    # 5. at most one active partition, and it is primary
    active = [p for p in parts if p.active]
    assert len(active) <= 1
    for p in active:
        assert p.kind is PartitionKind.PRIMARY


@settings(max_examples=60)
@given(ops=st.lists(op, max_size=25))
def test_partition_table_invariants_hold_under_any_op_stream(ops):
    disk = Disk(size_mb=250_000)
    for verb, arg in ops:
        try:
            if verb == "primary":
                disk.create_partition(arg, PartitionKind.PRIMARY)
            elif verb == "extended":
                disk.create_partition(arg, PartitionKind.EXTENDED)
            elif verb == "logical":
                disk.create_partition(arg, PartitionKind.LOGICAL)
            elif verb == "delete":
                disk.delete_partition(int(arg))
            elif verb == "format":
                disk.partition(int(arg)).format(FsType.EXT3)
        except StorageError:
            pass  # rejected ops must leave the table consistent
        check_invariants(disk)


@settings(max_examples=60)
@given(
    segments=st.lists(
        st.text(
            alphabet="abcXYZ019._-",
            min_size=1,
            max_size=8,
        ).filter(lambda s: s not in (".", "..")),
        min_size=1,
        max_size=6,
    )
)
def test_normalize_idempotent_and_absolute(segments):
    path = "/".join(segments)
    once = normalize(path)
    assert once.startswith("/")
    assert normalize(once) == once
    assert ".." not in once.split("/")


@settings(max_examples=40)
@given(
    files=st.dictionaries(
        st.text(alphabet="abc/", min_size=1, max_size=12),
        st.text(max_size=20),
        max_size=10,
    )
)
def test_filesystem_read_back_what_you_wrote(files):
    from repro.storage import Filesystem

    fs = Filesystem(FsType.EXT3)
    expected = {}
    for path, content in files.items():
        key = normalize(path)
        if key == "/":
            continue
        fs.write(path, content)
        expected[key] = content
    for key, content in expected.items():
        assert fs.read(key) == content
    assert fs.file_count == len(expected)
