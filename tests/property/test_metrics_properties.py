"""Property-based tests for utilisation math and workload invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.metrics.recorder import JobRecord
from repro.metrics.utilization import (
    busy_core_seconds,
    cluster_utilization,
    utilization_timeline,
)
from repro.workloads import MixedWorkload, load_trace, save_trace

record_strategy = st.builds(
    lambda submit, wait, run, cores, started: JobRecord(
        name="j",
        scheduler="pbs",
        cores=cores,
        submit_time=submit,
        start_time=(submit + wait) if started else None,
        end_time=(submit + wait + run) if started else None,
    ),
    submit=st.floats(min_value=0, max_value=1000),
    wait=st.floats(min_value=0, max_value=500),
    run=st.floats(min_value=0, max_value=500),
    cores=st.integers(min_value=1, max_value=8),
    started=st.booleans(),
)


@settings(max_examples=60)
@given(records=st.lists(record_strategy, max_size=20),
       horizon=st.floats(min_value=1, max_value=3000))
def test_utilization_bounded_and_consistent(records, horizon):
    total_cores = 16
    util = cluster_utilization(records, total_cores, horizon)
    assert util >= 0.0
    busy = busy_core_seconds(records, horizon)
    assert busy <= sum(r.cores for r in records) * horizon + 1e-6
    # timeline integrates to the same busy core-seconds
    timeline = utilization_timeline(records, horizon, bin_s=horizon / 10)
    # jobs may end after the horizon; timeline clips identically
    assert abs(float(timeline.sum()) * (horizon / 10) - busy) < 1e-3
    assert (timeline >= -1e-9).all()


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_mixed_workload_invariants(seed, fraction):
    jobs = MixedWorkload(
        seed=seed, windows_fraction=fraction, horizon_s=4 * 3600.0,
        rate_per_hour=5.0,
    ).generate()
    names = [j.name for j in jobs]
    assert len(names) == len(set(names))  # names unique (join key!)
    for job in jobs:
        assert 0 <= job.arrival_s < 4 * 3600.0
        assert job.runtime_s > 0
        assert job.cores >= 1
        if fraction == 0.0:
            assert job.os_name == "linux"
        if fraction == 1.0:
            assert job.os_name == "windows"
    # trace round-trip preserves everything
    assert load_trace(save_trace(jobs)) == sorted(
        jobs, key=lambda j: j.arrival_s
    )
