"""Property-based tests for the shell interpreter against a reference model."""

import string

from hypothesis import given, settings, strategies as st

from repro.oslayer import OSInstance, run_script
from repro.simkernel import Simulator
from repro.storage import Filesystem, FsType

filename = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)
content = st.text(
    alphabet=string.ascii_letters + string.digits + " _.", min_size=1,
    max_size=12,
).filter(lambda s: s.strip() == s and ">" not in s and "#" not in s)

# one scripted operation: (verb, filename, text)
operation = st.one_of(
    st.tuples(st.just("write"), filename, content),
    st.tuples(st.just("append"), filename, content),
    st.tuples(st.just("sleep"), st.just(""), st.integers(1, 5)),
)


def reference_model(ops):
    """What the files should contain, per a trivial dict model."""
    files = {}
    elapsed = 0.0
    for verb, name, payload in ops:
        if verb == "write":
            files[name] = payload + "\n"
        elif verb == "append":
            files[name] = files.get(name, "") + payload + "\n"
        else:
            elapsed += payload
    return files, elapsed


def script_for(ops):
    lines = []
    for verb, name, payload in ops:
        if verb == "write":
            lines.append(f"echo {payload} > /data/{name}")
        elif verb == "append":
            lines.append(f"echo {payload} >> /data/{name}")
        else:
            lines.append(f"sleep {payload}")
    return "\n".join(lines) + "\n"


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(operation, max_size=15))
def test_interpreter_matches_reference_model(ops):
    sim = Simulator()
    osi = OSInstance("linux", "node", {"/": Filesystem(FsType.EXT3)})
    proc = sim.spawn(run_script(osi, script_for(ops)))
    sim.run()
    result = proc.result
    assert result.ok

    expected_files, expected_elapsed = reference_model(ops)
    for name, body in expected_files.items():
        assert osi.read(f"/data/{name}") == body
    assert abs(sim.now - expected_elapsed) < 1e-9
