"""Property tests for the named-substream RNG (repro.simkernel.rng).

Two properties carry the reproduction's determinism story:

* **substream independence** — draws on one named stream are a pure
  function of (root seed, name, draw index); any amount of activity on
  *other* streams, in any order, never perturbs them;
* **restart stability** — seeds derive through SHA-256, not ``hash()``,
  so values survive process restarts (where ``PYTHONHASHSEED`` changes).
"""

import subprocess
import sys
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.simkernel.rng import RngStreams, _derive_seed

names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-_.:",
    min_size=1, max_size=24,
)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


# -- _derive_seed -------------------------------------------------------------


@given(seed=seeds, name=names)
def test_derived_seed_is_a_stable_64bit_value(seed, name):
    value = _derive_seed(seed, name)
    assert 0 <= value < 2**64
    assert value == _derive_seed(seed, name)


@given(seed=seeds, a=names, b=names)
def test_distinct_names_give_distinct_seeds(seed, a, b):
    if a != b:
        assert _derive_seed(seed, a) != _derive_seed(seed, b)


def test_derive_seed_golden_values():
    """Pinned outputs: a change here silently reshuffles EVERY simulation."""
    assert _derive_seed(0, "arrivals") == 1213280804437773225
    assert _derive_seed(42, "arrivals") == 1442938909952263380
    assert _derive_seed(42, "boot-jitter") == 10195204228135240133


# -- substream independence ---------------------------------------------------


@given(
    seed=seeds,
    watched=names,
    others=st.lists(st.tuples(names, st.integers(min_value=1, max_value=8)),
                    max_size=6),
    prior_draws=st.integers(min_value=0, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_interleaved_streams_never_perturb_each_other(
        seed, watched, others, prior_draws):
    # reference: the watched stream drawn alone
    ref = RngStreams(seed)
    reference = [ref.stream(watched).random() for _ in range(prior_draws + 1)]

    # same root seed, but with arbitrary traffic on other streams woven in
    noisy = RngStreams(seed)
    for name, count in others:
        if name != watched:
            for _ in range(count):
                noisy.stream(name).random()
    observed = [noisy.stream(watched).random() for _ in range(prior_draws)]
    for name, _ in others:
        if name != watched:
            noisy.stream(name).random()
    observed.append(noisy.stream(watched).random())

    assert observed == reference


@given(seed=seeds, name=names)
def test_spawn_children_are_independent_of_parent_draws(seed, name):
    direct = RngStreams(seed).spawn(name).stream("s").random()
    parent = RngStreams(seed)
    parent.stream("unrelated").random()  # parent traffic before spawning
    assert parent.spawn(name).stream("s").random() == direct


# -- restart stability --------------------------------------------------------


def test_streams_stable_across_process_restart(tmp_path):
    """A fresh interpreter (different hash randomisation) reproduces the
    exact same draws — the property ``hash()``-based seeding would lose."""
    src = Path(__file__).resolve().parents[2] / "src"
    program = (
        "from repro.simkernel.rng import RngStreams, _derive_seed\n"
        "rng = RngStreams(42)\n"
        "print(_derive_seed(42, 'arrivals'))\n"
        "print(repr([rng.stream('arrivals').random() for _ in range(3)]))\n"
        "print(repr(rng.exponential('service', 10.0)))\n"
    )
    outputs = set()
    for hashseed in ("1", "31337"):
        result = subprocess.run(
            [sys.executable, "-c", program],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": str(src), "PYTHONHASHSEED": hashseed},
        )
        outputs.add(result.stdout)
    assert len(outputs) == 1  # both interpreters printed identical draws

    # and the child output matches THIS process too
    rng = RngStreams(42)
    expected = (
        f"{_derive_seed(42, 'arrivals')}\n"
        f"{[rng.stream('arrivals').random() for _ in range(3)]!r}\n"
        f"{rng.exponential('service', 10.0)!r}\n"
    )
    assert outputs == {expected}
