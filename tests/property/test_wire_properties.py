"""Property-based tests for the Figure-5 wire format."""

import string

import pytest
from hypothesis import given, strategies as st

from repro.core.wire import JOBID_FIELD_WIDTH, QueueStateMessage
from repro.errors import MiddlewareError

from tests.fixtures import FIGURE6_IDLE_WIRE, FIGURE6_STUCK_WIRE

jobid_chars = st.text(
    alphabet=string.ascii_lowercase + string.digits + ".-",
    min_size=1,
    max_size=JOBID_FIELD_WIDTH,
).filter(lambda s: s.strip() == s and s != "")


@given(
    stuck=st.booleans(),
    cpus=st.integers(min_value=0, max_value=9999),
    jobid=jobid_chars,
)
def test_encode_decode_roundtrip(stuck, cpus, jobid):
    message = QueueStateMessage(stuck=stuck, needed_cpus=cpus, stuck_jobid=jobid)
    decoded = QueueStateMessage.decode(message.encode())
    assert decoded == message


@given(
    stuck=st.booleans(),
    cpus=st.integers(min_value=0, max_value=9999),
    jobid=jobid_chars,
)
def test_wire_field_positions_stable(stuck, cpus, jobid):
    wire = QueueStateMessage(stuck, cpus, jobid).encode()
    assert wire[0] == ("1" if stuck else "0")
    assert wire[1:5] == f"{cpus:04d}"
    assert wire[5:] == jobid
    assert len(wire) <= 1 + 4 + JOBID_FIELD_WIDTH


@given(
    stuck=st.booleans(),
    cpus=st.integers(min_value=0, max_value=9999),
    jobid=jobid_chars,
    padding=st.integers(min_value=0, max_value=20),
)
def test_decode_ignores_undefined_tail(stuck, cpus, jobid, padding):
    wire = QueueStateMessage(stuck, cpus, jobid).encode()
    # positions 68+ are "[Undefined]" — decode must ignore them, but only
    # beyond the jobid field
    if len(wire) == 1 + 4 + JOBID_FIELD_WIDTH:
        decoded = QueueStateMessage.decode(wire + "x" * padding)
        assert decoded.stuck_jobid == jobid


# -- the two Figure-6 wires, verbatim ----------------------------------------


def test_figure6_idle_wire_verbatim():
    message = QueueStateMessage.decode(FIGURE6_IDLE_WIRE)
    assert message == QueueStateMessage.idle()
    assert not message.stuck and not message.has_job
    assert message.encode() == FIGURE6_IDLE_WIRE


def test_figure6_stuck_wire_verbatim():
    wire = FIGURE6_STUCK_WIRE
    message = QueueStateMessage.decode(wire)
    assert message.stuck
    assert message.needed_cpus == 4
    assert message.stuck_jobid == "1191.eridani.qgg.hud.ac.uk"
    assert message.has_job
    assert message.encode() == wire


# -- corrupt inputs must raise, never crash oddly or decode wrongly ----------


@given(
    stuck=st.booleans(),
    cpus=st.integers(min_value=0, max_value=9999),
    jobid=jobid_chars,
    flag=st.characters().filter(lambda c: c not in "01"),
)
def test_bad_flag_rejected(stuck, cpus, jobid, flag):
    wire = QueueStateMessage(stuck, cpus, jobid).encode()
    with pytest.raises(MiddlewareError):
        QueueStateMessage.decode(flag + wire[1:])


@given(
    stuck=st.booleans(),
    jobid=jobid_chars,
    cpu_field=st.text(min_size=4, max_size=4).filter(lambda s: not s.isdigit()),
)
def test_non_digit_cpu_field_rejected(stuck, jobid, cpu_field):
    wire = QueueStateMessage(stuck, 0, jobid).encode()
    with pytest.raises(MiddlewareError):
        QueueStateMessage.decode(wire[0] + cpu_field + wire[5:])


@given(
    stuck=st.booleans(),
    cpus=st.integers(min_value=0, max_value=9999),
    jobid=jobid_chars,
    keep=st.integers(min_value=0, max_value=5),
)
def test_truncated_wire_rejected(stuck, cpus, jobid, keep):
    # anything shorter than flag + CPUs + one jobid char is underspecified
    wire = QueueStateMessage(stuck, cpus, jobid).encode()
    with pytest.raises(MiddlewareError):
        QueueStateMessage.decode(wire[:keep])


@given(
    cpus=st.integers().filter(lambda n: not 0 <= n <= 9999),
)
def test_cpus_outside_field_range_rejected(cpus):
    with pytest.raises(MiddlewareError):
        QueueStateMessage(stuck=True, needed_cpus=cpus, stuck_jobid="j1")


@given(
    extra=st.integers(min_value=1, max_value=40),
)
def test_overlong_jobid_rejected_at_construction(extra):
    jobid = "x" * (JOBID_FIELD_WIDTH + extra)
    with pytest.raises(MiddlewareError):
        QueueStateMessage(stuck=True, needed_cpus=1, stuck_jobid=jobid)


def test_empty_jobid_rejected():
    with pytest.raises(MiddlewareError):
        QueueStateMessage(stuck=False, needed_cpus=0, stuck_jobid="")
