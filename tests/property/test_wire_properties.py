"""Property-based tests for the Figure-5 wire format."""

import string

from hypothesis import given, strategies as st

from repro.core.wire import JOBID_FIELD_WIDTH, QueueStateMessage

jobid_chars = st.text(
    alphabet=string.ascii_lowercase + string.digits + ".-",
    min_size=1,
    max_size=JOBID_FIELD_WIDTH,
).filter(lambda s: s.strip() == s and s != "")


@given(
    stuck=st.booleans(),
    cpus=st.integers(min_value=0, max_value=9999),
    jobid=jobid_chars,
)
def test_encode_decode_roundtrip(stuck, cpus, jobid):
    message = QueueStateMessage(stuck=stuck, needed_cpus=cpus, stuck_jobid=jobid)
    decoded = QueueStateMessage.decode(message.encode())
    assert decoded == message


@given(
    stuck=st.booleans(),
    cpus=st.integers(min_value=0, max_value=9999),
    jobid=jobid_chars,
)
def test_wire_field_positions_stable(stuck, cpus, jobid):
    wire = QueueStateMessage(stuck, cpus, jobid).encode()
    assert wire[0] == ("1" if stuck else "0")
    assert wire[1:5] == f"{cpus:04d}"
    assert wire[5:] == jobid
    assert len(wire) <= 1 + 4 + JOBID_FIELD_WIDTH


@given(
    stuck=st.booleans(),
    cpus=st.integers(min_value=0, max_value=9999),
    jobid=jobid_chars,
    padding=st.integers(min_value=0, max_value=20),
)
def test_decode_ignores_undefined_tail(stuck, cpus, jobid, padding):
    wire = QueueStateMessage(stuck, cpus, jobid).encode()
    # positions 68+ are "[Undefined]" — decode must ignore them, but only
    # beyond the jobid field
    if len(wire) == 1 + 4 + JOBID_FIELD_WIDTH:
        decoded = QueueStateMessage.decode(wire + "x" * padding)
        assert decoded.stuck_jobid == jobid
