"""Property: network-only degradation never fences a node.

The heartbeat monitor watches OS liveness, not the data network — so a
fault plan containing nothing but link loss and latency jitter (however
severe, on whichever links) must never drive a healthy node to FENCED,
even while the middleware is actively switching nodes between OSes.
False fences would evict running jobs for no reason; this pins the
monitor's specificity the way the E14 storm pins its sensitivity.
"""

from hypothesis import given, settings, strategies as st

from repro.core import MiddlewareConfig, build_hybrid_cluster
from repro.faults import FaultInjector, FaultPlan, LinkFault
from repro.health import HealthState
from repro.simkernel import MINUTE


def _run_with_network_faults(seed, loss_prob, jitter_s, hit_compute_links):
    hybrid = build_hybrid_cluster(
        num_nodes=2, seed=seed, version=2,
        config=MiddlewareConfig(version=2, check_cycle_s=5 * MINUTE),
    )
    hybrid.deploy()
    hybrid.wait_for_nodes()
    sim = hybrid.sim
    cluster = hybrid.cluster
    t0 = sim.now

    heads = (cluster.linux_head.name, cluster.windows_head.name)
    pairs = [heads]
    if hit_compute_links:
        pairs += [(node.name, head)
                  for node in cluster.compute_nodes for head in heads]
    plan = FaultPlan(
        name="net-degraded",
        link_faults=tuple(
            LinkFault(src=src, dst=dst, loss_prob=loss_prob,
                      jitter_s=jitter_s, start_s=t0)
            for src, dst in pairs
        ),
    )
    injector = FaultInjector(
        sim, cluster.network, cluster.rng, plan,
        control=hybrid.daemons,
        nodes={n.name: n for n in cluster.compute_nodes},
        env=cluster.env,
        tracer=hybrid.tracer,
    )
    injector.arm()

    # demand work on both OSes so the control loop actually reboots nodes
    # mid-degradation — planned downtime must stay fence-immune too
    hybrid.submit_windows_job("winP", cores=4, runtime_s=8 * MINUTE)
    sim.run(until=t0 + 40 * MINUTE)
    hybrid.finalize()
    return hybrid


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    loss_prob=st.floats(min_value=0.0, max_value=0.95),
    jitter_s=st.floats(min_value=0.0, max_value=30.0),
    hit_compute_links=st.booleans(),
)
def test_loss_and_jitter_never_fence_a_healthy_node(
        seed, loss_prob, jitter_s, hit_compute_links):
    hybrid = _run_with_network_faults(
        seed, loss_prob, jitter_s, hit_compute_links)
    health = hybrid.health
    assert health is not None
    assert health.fences == 0
    assert health.fenced_nodes() == []
    for node in hybrid.cluster.compute_nodes:
        assert health.health(node.name).state is not HealthState.FENCED
    # and nobody's jobs were evicted by a phantom fence
    assert hybrid.pbs.requeues == 0
    assert hybrid.winhpc.requeues == 0
