"""Property-based tests for the event queue and scheduler invariants."""

from hypothesis import given, settings, strategies as st

from repro.pbs import JobSpec, JobState, PbsServer
from repro.simkernel import Simulator, Timeout


@settings(max_examples=60)
@given(delays=st.lists(st.floats(min_value=0, max_value=1000), max_size=40))
def test_events_execute_in_time_order_with_fifo_ties(delays):
    sim = Simulator()
    log = []
    for index, delay in enumerate(delays):
        sim.schedule(delay, log.append, (delay, index))
    sim.run()
    assert log == sorted(log)  # time asc, then insertion order


@settings(max_examples=40)
@given(delays=st.lists(st.floats(min_value=0.001, max_value=100), min_size=1, max_size=20))
def test_clock_never_goes_backwards(delays):
    sim = Simulator()
    seen = []

    def proc(ds):
        for d in ds:
            yield Timeout(d)
            seen.append(sim.now)

    sim.spawn(proc(delays))
    sim.run()
    assert seen == sorted(seen)
    assert abs(seen[-1] - sum(delays)) < 1e-6


job_stream = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=2),   # nodes
        st.integers(min_value=1, max_value=4),   # ppn
        st.floats(min_value=1.0, max_value=500.0),  # runtime
    ),
    min_size=1,
    max_size=15,
)


@settings(max_examples=40, deadline=None)
@given(jobs=job_stream)
def test_pbs_conservation_and_fifo_start_order(jobs):
    sim = Simulator()
    server = PbsServer(sim)
    for i in range(1, 5):
        server.create_node(f"n{i:02d}", np=4)
        server.node_up(f"n{i:02d}")
    total = server.free_cores()

    ids = [
        server.qsub(JobSpec(name=f"j{i}", nodes=n, ppn=p, runtime_s=r))
        for i, (n, p, r) in enumerate(jobs)
    ]
    # conservation during execution: free + allocated == total
    while sim.step():
        allocated = sum(
            len(record.core_jobs) for record in server.nodes.values()
        )
        assert server.free_cores() + allocated == total

    # everything completed with sane accounting
    for jobid in ids:
        job = server.jobs[jobid]
        assert job.state is JobState.COMPLETED
        assert job.wait_time_s >= 0
        assert job.end_time >= job.start_time
    assert server.free_cores() == total

    # strict FCFS: start times are non-decreasing in submission order
    starts = [server.jobs[jobid].start_time for jobid in ids]
    assert starts == sorted(starts)
