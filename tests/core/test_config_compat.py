"""Nested config groups and their deprecated flat spellings.

The elasticity/energy/trace knobs moved into nested dataclasses
(:class:`ElasticConfig`, :class:`EnergyConfig`, :class:`TraceConfig`).
The historical flat constructor keywords and attribute reads must keep
working — warning, not breaking — until the announced removal.
"""

import warnings

import pytest

from repro.core.config import (
    ElasticConfig,
    EnergyConfig,
    MiddlewareConfig,
    TraceConfig,
)
from repro.errors import ConfigurationError


def test_nested_groups_are_the_canonical_spelling():
    config = MiddlewareConfig(
        elastic=ElasticConfig(enabled=True, cycle_s=120.0, max_actions=4),
        energy=EnergyConfig(metering=False),
        trace=TraceConfig(mode="counts"),
    )
    assert config.elastic.enabled is True
    assert config.elastic.cycle_s == 120.0
    assert config.elastic.max_actions == 4
    assert config.energy.metering is False
    assert config.trace.mode == "counts"


def test_flat_keywords_map_onto_the_groups_with_a_warning():
    with pytest.warns(DeprecationWarning, match="elastic_enabled"):
        config = MiddlewareConfig(
            elastic_enabled=True,
            elastic_cycle_s=60.0,
            energy_metering=False,
            trace_mode="off",
        )
    assert config.elastic.enabled is True
    assert config.elastic.cycle_s == 60.0
    assert config.energy.metering is False
    assert config.trace.mode == "off"
    # untouched group fields keep their defaults
    assert config.elastic.hysteresis_cycles == 2
    assert config.elastic.min_online == 1


def test_flat_keywords_overlay_an_explicit_group():
    with pytest.warns(DeprecationWarning):
        config = MiddlewareConfig(
            elastic=ElasticConfig(min_online=3),
            elastic_enabled=True,
        )
    assert config.elastic.enabled is True
    assert config.elastic.min_online == 3


def test_alias_properties_read_through_to_the_groups():
    config = MiddlewareConfig(
        elastic=ElasticConfig(
            enabled=True, cycle_s=90.0, hysteresis_cycles=3,
            min_online=2, idle_surplus=0, max_actions=5,
        ),
        energy=EnergyConfig(metering=False),
        trace=TraceConfig(mode="counts"),
    )
    assert config.elastic_enabled is config.elastic.enabled
    assert config.elastic_cycle_s == 90.0
    assert config.elastic_hysteresis_cycles == 3
    assert config.elastic_min_online == 2
    assert config.elastic_idle_surplus == 0
    assert config.elastic_max_actions == 5
    assert config.energy_metering is False
    assert config.trace_mode == "counts"


def test_nested_spelling_does_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        MiddlewareConfig(elastic=ElasticConfig(enabled=True))


def test_group_validation_runs_for_flat_and_nested_spellings():
    with pytest.raises(ConfigurationError):
        ElasticConfig(cycle_s=0.0)
    with pytest.raises(ConfigurationError):
        ElasticConfig(hysteresis_cycles=0)
    with pytest.raises(ConfigurationError):
        TraceConfig(mode="everything")
    with pytest.raises(ConfigurationError), warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        MiddlewareConfig(elastic_cycle_s=-1.0)
    with pytest.raises(ConfigurationError), warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        MiddlewareConfig(trace_mode="everything")


def test_windows_scheduler_is_validated():
    assert MiddlewareConfig().windows_scheduler == "winhpc"
    assert MiddlewareConfig(windows_scheduler="slurm").windows_scheduler == (
        "slurm"
    )
    with pytest.raises(ConfigurationError, match="windows_scheduler"):
        MiddlewareConfig(windows_scheduler="lsf")


def test_unknown_keywords_still_fail_loudly():
    with pytest.raises(TypeError):
        MiddlewareConfig(elastic_typo=True)
