"""Middleware variant integrations: per-MAC v2 mode, eager detectors,
threshold policy, bootcontrol switch method."""


from repro.boot.grub4dos import menu_path_for
from repro.core import MiddlewareConfig, build_hybrid_cluster
from repro.core.policy import EagerPolicy, ThresholdPolicy
from repro.simkernel import HOUR, MINUTE
from repro.winhpc.job import WinJobState

CYCLE = 5 * MINUTE


def deploy(version=2, policy=None, **config_kw):
    config = MiddlewareConfig(version=version, check_cycle_s=CYCLE, **config_kw)
    hybrid = build_hybrid_cluster(
        num_nodes=4, seed=3, version=version, config=config, policy=policy
    )
    hybrid.deploy()
    hybrid.wait_for_nodes()
    return hybrid


def test_v2_per_mac_mode_full_loop():
    """The Figure-12 initial v2 design: one menu file per MAC address."""
    hybrid = deploy(v2_per_mac_menus=True, initial_windows_nodes=1)
    tftp = hybrid.wizard.installation.tftp
    for node in hybrid.cluster.compute_nodes:
        assert tftp.exists(menu_path_for(node.mac))
    by_os = hybrid.nodes_by_os()
    assert len(by_os["windows"]) == 1 and len(by_os["linux"]) == 3

    job = hybrid.submit_windows_job("render", cores=8, runtime_s=10 * MINUTE)
    hybrid.sim.run(until=hybrid.sim.now + 1 * HOUR)
    assert job.state is WinJobState.FINISHED
    assert len(hybrid.nodes_by_os()["windows"]) >= 2


def test_per_mac_initial_split_does_not_need_staging():
    """Unlike single-flag mode, per-MAC menus can express a mixed initial
    state directly."""
    hybrid = deploy(v2_per_mac_menus=True, initial_windows_nodes=2)
    assert len(hybrid.nodes_by_os()["windows"]) == 2


def test_eager_detectors_with_eager_policy_grow_pool_under_backlog():
    hybrid = deploy(policy=EagerPolicy(), eager_detectors=True)
    jobs = [
        hybrid.submit_windows_job(f"render{i}", cores=4, runtime_s=20 * MINUTE)
        for i in range(3)
    ]
    hybrid.sim.run(until=hybrid.sim.now + 90 * MINUTE)
    assert all(j.state is WinJobState.FINISHED for j in jobs)
    # backlog reaction: more than one node switched even though jobs ran
    assert hybrid.recorder.switch_count >= 2


def test_fcfs_paper_rule_grows_pool_by_one():
    hybrid = deploy()
    jobs = [
        hybrid.submit_windows_job(f"render{i}", cores=4, runtime_s=20 * MINUTE)
        for i in range(3)
    ]
    hybrid.sim.run(until=hybrid.sim.now + 3 * HOUR)
    assert all(j.state is WinJobState.FINISHED for j in jobs)
    # strict stuck rule: one switch, jobs drained serially on one node
    assert hybrid.recorder.switch_count == 1


def test_threshold_policy_delays_switch_by_cycles():
    hybrid = deploy(policy=ThresholdPolicy(threshold=3))
    submit_at = hybrid.sim.now
    job = hybrid.submit_windows_job("render", cores=4, runtime_s=5 * MINUTE)
    hybrid.sim.run(until=hybrid.sim.now + 2 * HOUR)
    assert job.state is WinJobState.FINISHED
    switch_time = next(
        r.time for r in hybrid.daemons.linux.decisions if r.decision.is_switch
    )
    # needs three consecutive stuck cycles before acting
    assert switch_time - submit_at >= 2 * CYCLE


def test_v1_bootcontrol_switch_method_end_to_end():
    hybrid = deploy(version=1, v1_switch_method="bootcontrol")
    job = hybrid.submit_windows_job("render", cores=4, runtime_s=10 * MINUTE)
    hybrid.sim.run(until=hybrid.sim.now + 1 * HOUR)
    assert job.state is WinJobState.FINISHED
    switched = hybrid.nodes_by_os()["windows"]
    assert len(switched) == 1
    # the controlmenu on the switched node's FAT partition points at windows
    node = hybrid.cluster.node(switched[0])
    assert hybrid.controller.current_target(node) == "windows"


def test_v1_repeated_round_trips_stay_consistent():
    """The two-step rename keeps the staged menus alive across cycles."""
    hybrid = deploy(version=1)
    for round_index in range(2):
        win_job = hybrid.submit_windows_job(
            f"w{round_index}", cores=4, runtime_s=5 * MINUTE
        )
        hybrid.sim.run(until=hybrid.sim.now + 45 * MINUTE)
        assert win_job.state is WinJobState.FINISHED
        # pull the node back with linux pressure: occupy all linux nodes,
        # then queue one more
        fills = [
            hybrid.submit_linux_job(f"fill{round_index}-{i}", runtime_s=30 * MINUTE)
            for i in range(len(hybrid.nodes_by_os()["linux"]))
        ]
        extra = hybrid.submit_linux_job(
            f"extra{round_index}", runtime_s=5 * MINUTE
        )
        hybrid.sim.run(until=hybrid.sim.now + 80 * MINUTE)
    fat = hybrid.cluster.compute_nodes[0].disk.filesystem(6)
    present = {
        name for name in
        ("controlmenu.lst", "controlmenu_to_linux.lst",
         "controlmenu_to_windows.lst")
        if fat.isfile("/" + name)
    }
    # live menu always present, plus the staged menu for the other OS
    assert "controlmenu.lst" in present
    assert len(present) >= 2
