"""Failure injection against the running middleware.

The control plane must degrade gracefully: a dead daemon pair, a downed
head-node link, or a bricked node must never corrupt scheduling state or
strand running jobs.
"""


from repro.core import MiddlewareConfig, build_hybrid_cluster
from repro.hardware.node import NodeState
from repro.simkernel import HOUR, MINUTE
from repro.winhpc.job import WinJobState

CYCLE = 5 * MINUTE


def deployed(**kw):
    hybrid = build_hybrid_cluster(
        num_nodes=4, seed=13, version=2,
        config=MiddlewareConfig(version=2, check_cycle_s=CYCLE, **kw),
    )
    hybrid.deploy()
    hybrid.wait_for_nodes()
    return hybrid


def test_daemons_stopped_jobs_still_run_but_no_switching():
    hybrid = deployed(initial_windows_nodes=1)
    hybrid.daemons.stop()
    linux_id = hybrid.submit_linux_job("md", runtime_s=10 * MINUTE)
    win_small = hybrid.submit_windows_job("ok", cores=4, runtime_s=10 * MINUTE)
    win_big = hybrid.submit_windows_job("needs-switch", cores=8,
                                        runtime_s=10 * MINUTE)
    hybrid.sim.run(until=hybrid.sim.now + 2 * HOUR)
    assert hybrid.pbs.jobs[linux_id].exit_status == 0
    assert win_small.state is WinJobState.FINISHED  # fits the existing node
    assert win_big.state is WinJobState.QUEUED      # nobody switches for it
    assert hybrid.recorder.switch_count == 0


def test_windows_head_offline_messages_dropped_silently():
    hybrid = deployed()
    dropped_before = hybrid.cluster.network.messages_dropped
    hybrid.cluster.linux_head.host.online = False  # linux head unreachable
    hybrid.submit_windows_job("render", cores=4, runtime_s=10 * MINUTE)
    hybrid.sim.run(until=hybrid.sim.now + 1 * HOUR)
    # wire messages were sent and dropped at the dead host
    assert hybrid.cluster.network.messages_dropped > dropped_before
    assert hybrid.cluster.network.drops_by_reason["offline"] > 0
    # the hardened loop keeps ticking on the last-known state, but it never
    # issues a switch from data older than the staleness cap
    assert hybrid.daemons.linux.stale_skips > 0
    assert not any(r.decision.is_switch for r in hybrid.daemons.linux.decisions)
    assert hybrid.recorder.switch_count == 0
    # recovery: bring the head back, the next cycle resumes control
    hybrid.cluster.linux_head.host.online = True
    hybrid.sim.run(until=hybrid.sim.now + 1 * HOUR)
    assert any(r.decision.is_switch for r in hybrid.daemons.linux.decisions)


def test_bricked_node_does_not_stall_the_cluster():
    hybrid = deployed()
    victim = hybrid.cluster.compute_nodes[0]
    victim.power_off()
    victim.disk.clean()  # catastrophic disk loss
    victim.disk.mbr.wipe()
    hybrid.wizard.installation.tftp.enabled = False  # and no PXE rescue
    victim.power_on()
    hybrid.sim.run(until=hybrid.sim.now + 10 * MINUTE)
    assert victim.state is NodeState.FAILED
    hybrid.wizard.installation.tftp.enabled = True

    # the rest of the cluster keeps serving both OSes
    linux_id = hybrid.submit_linux_job("md", runtime_s=5 * MINUTE)
    win_job = hybrid.submit_windows_job("render", cores=4,
                                        runtime_s=5 * MINUTE)
    hybrid.sim.run(until=hybrid.sim.now + 90 * MINUTE)
    assert hybrid.pbs.jobs[linux_id].exit_status == 0
    assert win_job.state is WinJobState.FINISHED
    assert hybrid.cluster.failed_nodes() == [victim]


def test_switch_job_killed_if_target_flag_menu_corrupted():
    """A corrupted flag menu must fail the boot visibly, not silently boot
    the wrong OS."""
    hybrid = deployed()
    tftp = hybrid.wizard.installation.tftp
    from repro.boot.grub4dos import default_menu_path

    tftp.put(default_menu_path(), "default=0\n")  # menu with no entries
    node = hybrid.cluster.compute_nodes[0]
    node.reboot()
    hybrid.sim.run(until=hybrid.sim.now + 10 * MINUTE)
    assert node.state is NodeState.FAILED
    assert "no menu entries" in node.last_boot.error


def test_node_lost_mid_switch_job_is_counted_killed():
    hybrid = deployed()
    win_job = hybrid.submit_windows_job("render", cores=4,
                                        runtime_s=10 * MINUTE)
    hybrid.sim.run(until=hybrid.sim.now + 2 * HOUR)
    switch_jobs = [
        j for j in hybrid.pbs.jobs.values() if j.tag == "os-switch"
    ]
    assert switch_jobs
    # the reboot killed the switch job (exit 271) — by design
    assert switch_jobs[0].exit_status == 271
    assert win_job.state is WinJobState.FINISHED
