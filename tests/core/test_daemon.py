"""Daemon wiring (start_daemons) unit tests."""

import pytest

from repro.core.controller import DualBootMenuSpec
from repro.core.controller_v2 import ControllerV2
from repro.core.daemon import start_daemons
from repro.core.policy import FcfsPolicy
from repro.errors import NetworkError
from repro.hardware import build_cluster
from repro.netsvc import DhcpServer, TftpServer
from repro.pbs import PbsServer
from repro.simkernel import MINUTE, Simulator
from repro.storage import Filesystem, FsType
from repro.winhpc import WinHpcScheduler


@pytest.fixture()
def rig():
    sim = Simulator()
    cluster = build_cluster(sim, num_nodes=2, seed=8)
    pbs = PbsServer(sim)
    winhpc = WinHpcScheduler(sim)
    controller = ControllerV2(
        DualBootMenuSpec(boot_partition=2, root_partition=6),
        tftp=TftpServer(Filesystem(FsType.EXT3)),
        dhcp=DhcpServer(),
    )
    controller.prepare_cluster()
    return sim, cluster, pbs, winhpc, controller


def start(rig, **kw):
    sim, cluster, pbs, winhpc, controller = rig
    return start_daemons(
        cluster=cluster, pbs=pbs, winhpc=winhpc, controller=controller,
        policy=FcfsPolicy(), cycle_s=10 * MINUTE, port=5800, **kw,
    )


def test_daemons_run_and_report(rig):
    sim = rig[0]
    daemons = start(rig)
    assert daemons.linux_process.alive
    assert daemons.windows_process.alive
    sim.run(until=25 * MINUTE)
    assert daemons.windows.reports_sent == 3
    assert len(daemons.linux.decisions) == 3


def test_cores_per_node_inferred_from_cluster(rig):
    daemons = start(rig)
    assert daemons.linux.cores_per_node == 4  # Q8200 quad core


def test_cores_per_node_override(rig):
    daemons = start(rig, cores_per_node=8)
    assert daemons.linux.cores_per_node == 8


def test_stop_kills_both_processes(rig):
    sim = rig[0]
    daemons = start(rig)
    sim.run(until=5 * MINUTE)
    daemons.stop()
    before = daemons.windows.reports_sent
    sim.run(until=60 * MINUTE)
    assert daemons.windows.reports_sent == before
    assert not daemons.linux_process.alive
    assert not daemons.windows_process.alive


def test_port_already_bound_raises(rig):
    start(rig)
    with pytest.raises(NetworkError, match="already bound"):
        start(rig)
