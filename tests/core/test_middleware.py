"""Integration tests: full deploy + control loop for v1 and v2.

These exercise the complete stack — deployment, boot chains, schedulers,
detectors, communicators, policies, switch jobs — on a 4-node cluster.
"""

import pytest

from repro.core import MiddlewareConfig, build_hybrid_cluster
from repro.errors import MiddlewareError
from repro.hardware.node import NodeState
from repro.simkernel import HOUR, MINUTE
from repro.winhpc.job import WinJobState

CYCLE = 5 * MINUTE


def deployed(version, num_nodes=4, seed=7, **config_kw):
    config = MiddlewareConfig(
        version=version, check_cycle_s=CYCLE, **config_kw
    )
    hybrid = build_hybrid_cluster(
        num_nodes=num_nodes, seed=seed, version=version, config=config
    )
    hybrid.deploy()
    hybrid.wait_for_nodes()
    return hybrid


@pytest.fixture(scope="module")
def v2():
    return deployed(2)


def test_deploy_boots_everything_linux():
    hybrid = deployed(2)
    assert len(hybrid.nodes_by_os()["linux"]) == 4
    assert hybrid.pbs.free_cores() == 16
    assert len(hybrid.winhpc.online_nodes()) == 0


def test_double_deploy_rejected(v2):
    with pytest.raises(MiddlewareError):
        v2.deploy()


def test_initial_windows_split_v2():
    hybrid = deployed(2, initial_windows_nodes=2)
    by_os = hybrid.nodes_by_os()
    assert len(by_os["windows"]) == 2
    assert len(by_os["linux"]) == 2
    assert len(hybrid.winhpc.idle_nodes()) == 2


def test_initial_windows_split_v1():
    hybrid = deployed(1, initial_windows_nodes=1)
    assert len(hybrid.nodes_by_os()["windows"]) == 1


def test_oversized_split_rejected():
    config = MiddlewareConfig(version=2, initial_windows_nodes=9)
    hybrid = build_hybrid_cluster(num_nodes=4, version=2, config=config)
    with pytest.raises(MiddlewareError):
        hybrid.deploy()


@pytest.mark.parametrize("version", [1, 2])
def test_windows_demand_triggers_switch(version):
    hybrid = deployed(version)
    job = hybrid.submit_windows_job("render", cores=4, runtime_s=10 * MINUTE)
    hybrid.sim.run(until=hybrid.sim.now + 1 * HOUR)
    assert job.state is WinJobState.FINISHED
    assert len(hybrid.nodes_by_os()["windows"]) == 1
    assert hybrid.recorder.switch_count >= 1


@pytest.mark.parametrize("version", [1, 2])
def test_linux_demand_triggers_switch_back(version):
    hybrid = deployed(version, initial_windows_nodes=4)
    assert hybrid.nodes_by_os()["linux"] == []
    jobid = hybrid.submit_linux_job("md", nodes=1, ppn=4, runtime_s=10 * MINUTE)
    hybrid.sim.run(until=hybrid.sim.now + 1 * HOUR)
    job = hybrid.pbs.jobs[jobid]
    assert job.state.value == "C"
    assert job.exit_status == 0
    assert len(hybrid.nodes_by_os()["linux"]) >= 1


def test_multi_node_demand_switches_enough_nodes():
    hybrid = deployed(2)
    job = hybrid.submit_windows_job("big-render", cores=12, runtime_s=10 * MINUTE)
    hybrid.sim.run(until=hybrid.sim.now + 90 * MINUTE)
    assert job.state is WinJobState.FINISHED
    assert job.total_allocated_cores() == 12
    assert len(hybrid.nodes_by_os()["windows"]) >= 3


def test_busy_nodes_protected_from_switching():
    """'all the running jobs can be protected' (§III.B.2): switch jobs book
    idle nodes only."""
    hybrid = deployed(2)
    linux_ids = [
        hybrid.submit_linux_job(f"md{i}", nodes=1, ppn=4, runtime_s=2 * HOUR)
        for i in range(3)
    ]
    win_job = hybrid.submit_windows_job("render", cores=4, runtime_s=10 * MINUTE)
    hybrid.sim.run(until=hybrid.sim.now + 1 * HOUR)
    # exactly the one idle node switched; the three busy ones kept working
    assert len(hybrid.nodes_by_os()["windows"]) == 1
    for jobid in linux_ids:
        assert hybrid.pbs.jobs[jobid].state.value == "R"
    assert win_job.state is WinJobState.FINISHED


def test_no_demand_no_switch():
    hybrid = deployed(2)
    hybrid.sim.run(until=hybrid.sim.now + 2 * HOUR)
    assert hybrid.recorder.switch_count == 0
    assert hybrid.daemons.windows.reports_sent >= 20
    assert all(
        not record.decision.is_switch
        for record in hybrid.daemons.linux.decisions
    )


def test_detection_latency_bounded_by_cycle():
    hybrid = deployed(2)
    submit_at = hybrid.sim.now
    job = hybrid.submit_windows_job("render", cores=4, runtime_s=MINUTE)
    hybrid.sim.run(until=hybrid.sim.now + 1 * HOUR)
    switch_decisions = [
        r for r in hybrid.daemons.linux.decisions if r.decision.is_switch
    ]
    assert switch_decisions
    assert switch_decisions[0].time - submit_at <= CYCLE + 1.0


def test_switch_latency_under_five_minutes():
    """§III.C: booting from one OS to another takes no more than 5 min.
    Measured from the reboot starting (node leaves Linux) to Windows up."""
    hybrid = deployed(2)
    hybrid.submit_windows_job("render", cores=4, runtime_s=MINUTE)
    hybrid.sim.run(until=hybrid.sim.now + 1 * HOUR)
    switched = [
        n for n in hybrid.cluster.compute_nodes if len(n.boot_records) > 1
    ]
    assert switched
    record = switched[0].boot_records[-1]
    assert record.os_name == "windows"
    assert record.duration_s <= 5 * MINUTE


def test_effort_ledger_v1_vs_v2():
    v1_effort = deployed(1).effort.by_category()
    v2_effort = deployed(2).effort.by_category()
    # v1: diskpart + ide.disk + 3 master-script edits = 5 hand edits
    assert v1_effort["edit-script"] == 5
    # v2: diskpart (Figure 10) + reimage swap (Figure 15) only
    assert v2_effort["edit-script"] == 2
    assert "reinstall-other-os" not in v1_effort  # windows deployed first


def test_reimage_windows_v1_destroys_linux_and_charges_ledger():
    hybrid = deployed(1)
    before = hybrid.effort.count("reinstall-other-os")
    node = hybrid.cluster.compute_nodes[0]
    hybrid.reimage_windows(node)
    hybrid.sim.run(until=hybrid.sim.now + 15 * MINUTE)
    assert hybrid.effort.count("reinstall-other-os") == before + 1
    assert node.state is NodeState.UP
    assert node.os_name == "linux"  # middleware restored Linux + controlmenu


def test_reimage_windows_v2_preserves_linux():
    hybrid = deployed(2)
    node = hybrid.cluster.compute_nodes[0]
    node_fs = node.disk.filesystem(6)
    node_fs.write("/home/user/precious", "data")
    before = hybrid.effort.count()
    hybrid.reimage_windows(node)
    hybrid.sim.run(until=hybrid.sim.now + 15 * MINUTE)
    assert hybrid.effort.count() == before  # zero human intervention
    assert node.disk.filesystem(6).read("/home/user/precious") == "data"
    assert node.state is NodeState.UP


def test_reimage_linux_preserves_windows_both_versions():
    for version in (1, 2):
        hybrid = deployed(version)
        node = hybrid.cluster.compute_nodes[0]
        node.disk.filesystem(1).write("/Users/Public/keep.txt", "windows data")
        hybrid.reimage_linux(node)
        hybrid.sim.run(until=hybrid.sim.now + 15 * MINUTE)
        assert node.disk.filesystem(1).read("/Users/Public/keep.txt") == (
            "windows data"
        )
        assert node.state is NodeState.UP


def test_rebuild_image_costs_v1_three_edits_v2_zero():
    v1 = deployed(1)
    base = v1.effort.count("edit-script")
    v1.rebuild_image()
    assert v1.effort.count("edit-script") == base + 3
    v2 = deployed(2)
    base = v2.effort.count("edit-script")
    v2.rebuild_image()
    assert v2.effort.count("edit-script") == base
