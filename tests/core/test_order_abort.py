"""Switch-order ledger under node failures: abort_jobs + expect_rejoin.

A fence terminally kills non-rerunnable switch jobs; the order ledger
must fail their orders immediately (not wait out the watchdog), and a
fenced node rebooting back must not be mistaken for a switch landing.
"""

import pytest

from repro.core.communicator import SwitchOrders
from repro.core.controller import DualBootMenuSpec
from repro.core.controller_v2 import ControllerV2
from repro.core.switchjob import OrderState, pbs_switch_jobspec
from repro.netsvc import DhcpServer, TftpServer
from repro.pbs import PbsServer
from repro.simkernel import MINUTE, Simulator
from repro.storage import Filesystem, FsType
from repro.winhpc import WinHpcScheduler


@pytest.fixture()
def rig():
    sim = Simulator()
    pbs = PbsServer(sim)
    for i in range(1, 5):
        pbs.create_node(f"enode{i:02d}", np=4)
        pbs.node_up(f"enode{i:02d}")
    winhpc = WinHpcScheduler(sim)
    for i in range(1, 5):
        winhpc.add_node(f"enode{i:02d}", cores=4)
    controller = ControllerV2(
        DualBootMenuSpec(boot_partition=2, root_partition=6),
        tftp=TftpServer(Filesystem(FsType.EXT3)),
        dhcp=DhcpServer(),
    )
    controller.prepare_cluster()
    orders = SwitchOrders(pbs, winhpc, controller, order_timeout_s=15 * MINUTE)
    return sim, pbs, winhpc, orders


def issue_to_windows(pbs, orders):
    script = orders.controller.linux_switch_script("windows")
    jobid = pbs.qsub(pbs_switch_jobspec(script), owner="sliang")
    orders._record("windows", jobid)
    return jobid


def test_abort_jobs_fails_matching_pending_orders(rig):
    sim, pbs, winhpc, orders = rig
    jobid = issue_to_windows(pbs, orders)
    other = issue_to_windows(pbs, orders)
    assert orders.in_flight("windows") == 2

    aborted = orders.abort_jobs([jobid], cause="node enode04 fenced")
    assert aborted == 1
    assert orders.orders_failed == 1
    assert orders.orders[0].state is OrderState.FAILED
    assert orders.orders[1].pending  # the other order is untouched
    assert orders.in_flight("windows") == 1
    # the failed order ignores later joins; the pending one confirms
    winhpc.node_online("enode01")
    assert orders.orders_confirmed == 1
    assert orders.orders[1].jobid == other


def test_abort_jobs_ignores_unknown_and_resolved(rig):
    sim, pbs, winhpc, orders = rig
    jobid = issue_to_windows(pbs, orders)
    winhpc.node_online("enode01")  # the node landed: confirms the order
    assert orders.orders_confirmed == 1
    # a confirmed order cannot be aborted, nor can a job with no order
    assert orders.abort_jobs([jobid, "9999.nowhere"], cause="x") == 0
    assert orders.orders_failed == 0


def test_expected_rejoin_does_not_confirm_an_order(rig):
    sim, pbs, winhpc, orders = rig
    issue_to_windows(pbs, orders)
    # the middleware fenced enode02; its reboot (into Windows, even) is a
    # crash recovery, not a switch landing
    orders.expect_rejoin("enode02")
    winhpc.node_online("enode02")
    assert orders.orders_confirmed == 0
    assert orders.in_flight("windows") == 1
    # the marker is consumed: the NEXT join is a genuine confirmation
    winhpc.node_online("enode03")
    assert orders.orders_confirmed == 1
