"""Operator status report."""

import pytest

from repro.core import MiddlewareConfig, build_hybrid_cluster
from repro.errors import MiddlewareError
from repro.simkernel import HOUR, MINUTE


def test_status_report_before_deploy_rejected():
    hybrid = build_hybrid_cluster(num_nodes=2, seed=1, version=2)
    with pytest.raises(MiddlewareError):
        hybrid.status_report()


def test_status_report_contents():
    hybrid = build_hybrid_cluster(
        num_nodes=2, seed=1, version=2,
        config=MiddlewareConfig(version=2, check_cycle_s=5 * MINUTE),
    )
    hybrid.deploy()
    hybrid.wait_for_nodes()
    hybrid.submit_windows_job("render", cores=4, runtime_s=10 * MINUTE)
    hybrid.sim.run(until=hybrid.sim.now + 1 * HOUR)
    report = hybrid.status_report()
    assert "dualboot-oscar v2 on 2 nodes" in report
    assert "PXE/GRUB4DOS" in report
    assert "target-OS flag:" in report
    assert "enode01" in report and "enode02" in report
    assert "pxe-grub4dos" in report
    assert "switches so far: 1" in report
    assert "PBS:" in report and "WinHPC:" in report


def test_status_report_v1_has_no_cluster_flag_line():
    hybrid = build_hybrid_cluster(num_nodes=2, seed=1, version=1)
    hybrid.deploy()
    hybrid.wait_for_nodes()
    report = hybrid.status_report()
    assert "FAT controlmenu" in report
    assert "target-OS flag:" not in report  # per-node control in v1
