"""Controller v1/v2 tests: provisioning, flag control, boot effects."""

import pytest

from repro.boot import resolve_boot
from repro.boot.chain import BootEnvironment
from repro.boot.grub4dos import GRUB4DOS_ROM, menu_path_for
from repro.core.controller import DualBootMenuSpec, make_dualboot_menu
from repro.core.controller_v1 import ControllerV1, redirect_menu_lst
from repro.core.controller_v2 import ControllerV2
from repro.errors import MiddlewareError
from repro.hardware import ComputeNode, INTEL_Q8200
from repro.hardware.nic import Nic, mac_for_index
from repro.netsvc import DhcpServer, TftpServer
from repro.simkernel import Simulator
from repro.simkernel.rng import RngStreams
from repro.storage import Filesystem, FsType
from tests.conftest import make_v1_disk

V1_SPEC = DualBootMenuSpec(boot_partition=2, root_partition=7)
V2_SPEC = DualBootMenuSpec(boot_partition=2, root_partition=6)


def make_node(sim, disk=None):
    node = ComputeNode(
        sim=sim, name="enode01", spec=INTEL_Q8200,
        nic=Nic(mac_for_index(1)), rng=RngStreams(1),
    )
    node.disk = disk if disk is not None else make_v1_disk()
    return node


def test_make_dualboot_menu_matches_figure3_structure():
    text = make_dualboot_menu(V1_SPEC, "linux")
    assert "default 0" in text
    assert "root (hd0,1)" in text
    assert "root=/dev/sda7" in text
    assert "rootnoverify (hd0,0)" in text
    assert "chainloader +1" in text
    windows = make_dualboot_menu(V1_SPEC, "windows")
    assert "default 1" in windows


def test_redirect_menu_matches_figure2_structure():
    text = redirect_menu_lst(V1_SPEC, fat_partition=6)
    assert "default=0" in text
    assert "hiddenmenu" in text
    assert "root (hd0,5)" in text
    assert "configfile /controlmenu.lst" in text


# -- v1 ----------------------------------------------------------------------


def test_v1_prepare_node_and_boot_flip():
    sim = Simulator()
    node = make_node(sim)
    controller = ControllerV1(V1_SPEC)
    controller.prepare_node(node, initial_os="linux")
    assert node.firmware.boot_order == ("disk",)
    assert controller.current_target(node) == "linux"

    outcome = resolve_boot(node.disk, node.firmware, node.mac, BootEnvironment())
    assert outcome.os_name == "linux"

    controller.set_target_os("windows", node)
    assert controller.current_target(node) == "windows"
    outcome = resolve_boot(node.disk, node.firmware, node.mac, BootEnvironment())
    assert outcome.os_name == "windows"


def test_v1_prepare_writes_staged_menus_and_bootcontrol():
    sim = Simulator()
    node = make_node(sim)
    ControllerV1(V1_SPEC).prepare_node(node)
    fat = node.disk.filesystem(6)
    assert fat.isfile("/controlmenu.lst")
    assert fat.isfile("/controlmenu_to_linux.lst")
    assert fat.isfile("/controlmenu_to_windows.lst")
    assert fat.isfile("/bootcontrol.pl")


def test_v1_requires_fat_partition():
    sim = Simulator()
    from repro.storage import Disk

    disk = Disk(size_mb=250_000)
    disk.create_partition(1000).format(FsType.EXT3)
    node = make_node(sim, disk=disk)
    with pytest.raises(MiddlewareError):
        ControllerV1(V1_SPEC, fat_partition=1).prepare_node(node)


def test_v1_cluster_wide_flag_unsupported():
    controller = ControllerV1(V1_SPEC)
    with pytest.raises(MiddlewareError):
        controller.set_target_os("windows")
    with pytest.raises(MiddlewareError):
        controller.current_target()


def test_v1_switch_scripts_carry_target():
    controller = ControllerV1(V1_SPEC, switch_method="bootcontrol")
    assert "controlmenu.lst windows" in controller.linux_switch_script("windows")
    assert "controlmenu_to_linux.lst controlmenu.lst" in (
        controller.windows_switch_script("linux")
    )


# -- v2 -------------------------------------------------------------------------


def v2_setup():
    sim = Simulator()
    head_fs = Filesystem(FsType.EXT3, label="headroot")
    tftp = TftpServer(head_fs)
    dhcp = DhcpServer(next_server="eridani")
    controller = ControllerV2(V2_SPEC, tftp=tftp, dhcp=dhcp)
    return sim, tftp, dhcp, controller


def test_v2_prepare_cluster_serves_rom_and_flag():
    sim, tftp, dhcp, controller = v2_setup()
    controller.prepare_cluster(initial_os="linux")
    assert tftp.fetch("/grldr") == GRUB4DOS_ROM
    assert dhcp.default_bootfile == "/grldr"
    assert controller.current_target() == "linux"


def test_v2_flag_flip_changes_boot_outcome():
    sim = Simulator()
    head_fs = Filesystem(FsType.EXT3, label="headroot")
    tftp = TftpServer(head_fs)
    dhcp = DhcpServer(next_server="eridani")
    # the test disk uses the v1 geometry (root on sda7)
    controller = ControllerV2(V1_SPEC, tftp=tftp, dhcp=dhcp)
    controller.prepare_cluster(initial_os="linux")
    disk = make_v1_disk()
    node = make_node(sim, disk=disk)
    controller.prepare_node(node)
    assert node.firmware.boot_order == ("pxe", "disk")

    env = BootEnvironment(dhcp=dhcp, tftp=tftp)
    outcome = resolve_boot(disk, node.firmware, node.mac, env)
    assert (outcome.os_name, outcome.via) == ("linux", "pxe-grub4dos")

    controller.set_target_os("windows")
    dhcp.release(node.mac)
    outcome = resolve_boot(disk, node.firmware, node.mac, env)
    assert outcome.os_name == "windows"


def test_v2_single_flag_is_cluster_wide():
    sim, tftp, dhcp, controller = v2_setup()
    controller.prepare_cluster()
    controller.set_target_os("windows")
    # no per-node state: the default menu is the only control file
    assert controller.current_target() == "windows"
    assert not tftp.exists(menu_path_for("02:00:5e:00:00:01"))


def test_v2_per_mac_mode_writes_node_menus():
    sim, tftp, dhcp, _ = v2_setup()
    controller = ControllerV2(V2_SPEC, tftp=tftp, dhcp=dhcp, per_mac_menus=True)
    controller.prepare_cluster()
    node = make_node(sim)
    controller.prepare_node(node, initial_os="windows")
    assert tftp.exists(menu_path_for(node.mac))
    assert controller.current_target(node) == "windows"
    controller.set_target_os("linux", node)
    assert controller.current_target(node) == "linux"
    with pytest.raises(MiddlewareError):
        controller.set_target_os("linux")  # needs a node in per-MAC mode


def test_v2_switch_scripts_are_target_free():
    _, _, _, controller = v2_setup()
    assert "bootcontrol" not in controller.linux_switch_script("windows")
    assert "ren" not in controller.windows_switch_script("linux")
