"""Detector tests: the three Figure-6 states on both schedulers."""

import pytest

from repro.core.detector import PbsDetector, WinHpcDetector, parse_qstat_full
from repro.pbs import JobSpec, PbsCommands, PbsServer
from repro.simkernel import Simulator
from repro.winhpc import (
    HpcSchedulerConnection,
    WinHpcScheduler,
    WinJobSpec,
    WinJobUnit,
)


@pytest.fixture()
def sim():
    return Simulator()


@pytest.fixture()
def pbs(sim):
    server = PbsServer(sim, first_jobid=1185)
    for i in range(1, 5):
        server.create_node(f"enode{i:02d}", np=4)
        server.node_up(f"enode{i:02d}")
    return server


@pytest.fixture()
def detector(pbs):
    return PbsDetector(PbsCommands(pbs))


def all_down(pbs):
    for host in list(pbs.nodes):
        pbs.node_down(host)


def test_other_state_when_empty(detector):
    report = detector.check()
    assert report.wire == "00000none"
    assert report.debug[0] == "Other state"
    assert "R=0 nR=0" in report.text()


def test_running_no_queuing(detector, pbs):
    pbs.qsub(JobSpec(name="sleep", nodes=1, ppn=4, runtime_s=100.0))
    report = detector.check()
    assert report.wire == "00000none"
    assert report.debug[0] == "Job running, no queuing."
    assert "Job_Name=sleep" in report.text()
    assert report.running == 1


def test_stuck_state(detector, pbs):
    all_down(pbs)
    jobid = pbs.qsub(JobSpec(name="md", nodes=1, ppn=4, runtime_s=100.0))
    report = detector.check()
    assert report.wire == f"10004{jobid}"
    assert report.debug == ["Queue stuck", "R=0 nR=1"]
    assert report.message.needed_cpus == 4


def test_stuck_reports_first_queued_jobs_needs(detector, pbs):
    all_down(pbs)
    first = pbs.qsub(JobSpec(name="big", nodes=4, ppn=4, runtime_s=1.0))
    pbs.qsub(JobSpec(name="small", nodes=1, ppn=1, runtime_s=1.0))
    report = detector.check()
    assert report.message.needed_cpus == 16  # 4 nodes x ppn=4
    assert report.message.stuck_jobid == first
    assert report.queued == 2


def test_running_plus_queued_is_not_stuck(detector, pbs):
    pbs.qsub(JobSpec(name="fill", nodes=4, ppn=4, runtime_s=100.0))
    pbs.qsub(JobSpec(name="wait", nodes=4, ppn=4, runtime_s=100.0))
    report = detector.check()
    assert not report.message.stuck
    assert report.running == 1 and report.queued == 1


def test_switch_jobs_invisible_to_detector(detector, pbs):
    """release_1_node jobs must not count, or switching would feed back."""
    all_down(pbs)
    pbs.qsub(JobSpec(name="release_1_node", nodes=1, ppn=4, runtime_s=1.0))
    report = detector.check()
    assert report.wire == "00000none"


def test_parse_qstat_full_extracts_fields(pbs):
    pbs.qsub(JobSpec(name="sleep", nodes=2, ppn=4, runtime_s=50.0))
    jobs = parse_qstat_full(PbsCommands(pbs).qstat_f())
    assert len(jobs) == 1
    assert jobs[0]["Job_Name"] == "sleep"
    assert jobs[0]["job_state"] == "R"
    assert jobs[0]["Resource_List.nodes"] == "2:ppn=4"
    assert jobs[0]["Job_Id"].startswith("1185.")


def test_parse_qstat_full_empty():
    assert parse_qstat_full("") == []


# -- Windows side -------------------------------------------------------------


@pytest.fixture()
def win(sim):
    scheduler = WinHpcScheduler(sim)
    for i in range(1, 5):
        scheduler.add_node(f"enode{i:02d}", cores=4)
        scheduler.node_online(f"enode{i:02d}")
    return scheduler


@pytest.fixture()
def win_detector(win):
    sdk = HpcSchedulerConnection()
    sdk.connect(win)
    return WinHpcDetector(sdk)


def win_all_down(win):
    for host in list(win.nodes):
        win.node_unreachable(host)


def test_win_other_state(win_detector):
    assert win_detector.check().wire == "00000none"


def test_win_running_state(win_detector, win):
    win.submit(WinJobSpec(name="render", amount=4, runtime_s=100.0))
    report = win_detector.check()
    assert report.wire == "00000none"
    assert report.running == 1


def test_win_stuck_core_job(win_detector, win):
    win_all_down(win)
    job = win.submit(WinJobSpec(name="render", amount=6, runtime_s=1.0))
    report = win_detector.check()
    assert report.message.stuck
    assert report.message.needed_cpus == 6
    assert report.message.stuck_jobid == str(job.job_id)


def test_win_stuck_node_unit_job_counts_cores(win_detector, win):
    win_all_down(win)
    win.submit(WinJobSpec(name="mdcs", unit=WinJobUnit.NODE, amount=2, runtime_s=1.0))
    report = win_detector.check()
    assert report.message.needed_cpus == 8  # 2 nodes x 4 cores


def test_win_switch_jobs_ignored(win_detector, win):
    win_all_down(win)
    win.submit(
        WinJobSpec(name="release_1_node", unit=WinJobUnit.NODE, amount=1,
                   runtime_s=1.0, tag="os-switch")
    )
    assert win_detector.check().wire == "00000none"
