"""Figure-5 wire format tests."""

import pytest

from repro.core.wire import NO_JOB, QueueStateMessage
from repro.errors import MiddlewareError

from tests.fixtures import FIGURE6_IDLE_WIRE, FIGURE6_STUCK_WIRE


def test_idle_message_matches_figure6():
    assert QueueStateMessage.idle().encode() == FIGURE6_IDLE_WIRE


def test_stuck_message_matches_figure6():
    msg = QueueStateMessage.stuck_queue(4, "1191.eridani.qgg.hud.ac.uk")
    assert msg.encode() == FIGURE6_STUCK_WIRE


def test_roundtrip_idle():
    decoded = QueueStateMessage.decode(FIGURE6_IDLE_WIRE)
    assert decoded == QueueStateMessage.idle()
    assert not decoded.stuck
    assert not decoded.has_job


def test_roundtrip_stuck():
    wire = FIGURE6_STUCK_WIRE
    decoded = QueueStateMessage.decode(wire)
    assert decoded.stuck
    assert decoded.needed_cpus == 4
    assert decoded.stuck_jobid == "1191.eridani.qgg.hud.ac.uk"
    assert decoded.encode() == wire
    assert decoded.has_job


def test_cpu_field_zero_padded():
    assert QueueStateMessage.stuck_queue(64, "j").encode().startswith("10064")
    assert QueueStateMessage.stuck_queue(1234, "j").encode().startswith("11234")


def test_decode_tolerates_trailing_padding():
    decoded = QueueStateMessage.decode(FIGURE6_IDLE_WIRE + " " * 10)
    assert decoded.stuck_jobid == NO_JOB


def test_field_positions_per_figure5():
    wire = QueueStateMessage.stuck_queue(4, "X").encode()
    assert wire[0] == "1"          # position 0: queue state
    assert wire[1:5] == "0004"     # positions 1-4: needed CPUs
    assert wire[5:] == "X"         # positions 5-: job id


def test_validation_errors():
    with pytest.raises(MiddlewareError):
        QueueStateMessage(stuck=True, needed_cpus=10000, stuck_jobid="x")
    with pytest.raises(MiddlewareError):
        QueueStateMessage(stuck=True, needed_cpus=-1, stuck_jobid="x")
    with pytest.raises(MiddlewareError):
        QueueStateMessage(stuck=True, needed_cpus=4, stuck_jobid="x" * 64)
    with pytest.raises(MiddlewareError):
        QueueStateMessage(stuck=True, needed_cpus=4, stuck_jobid="")


def test_decode_errors():
    with pytest.raises(MiddlewareError):
        QueueStateMessage.decode("0000")  # too short
    with pytest.raises(MiddlewareError):
        QueueStateMessage.decode("2" + "0000none")  # bad flag
    with pytest.raises(MiddlewareError):
        QueueStateMessage.decode("1abcdnone")  # bad CPU field


def test_max_width_jobid_roundtrips():
    jobid = "j" * 63
    wire = QueueStateMessage.stuck_queue(9999, jobid).encode()
    assert len(wire) == 68
    assert QueueStateMessage.decode(wire).stuck_jobid == jobid
