"""Switch-policy tests: FCFS plus the §V extensions."""

import pytest

from repro.core.policy import (
    ClusterView,
    FcfsPolicy,
    ReservePolicy,
    SwitchDecision,
    ThresholdPolicy,
)
from repro.core.wire import QueueStateMessage

IDLE = QueueStateMessage.idle()


def stuck(cpus, jobid="1191.eridani"):
    return QueueStateMessage.stuck_queue(cpus, jobid)


def view(state=IDLE, idle=0, total=8, pending=0):
    return ClusterView(
        state=state, idle_nodes=idle, total_nodes=total, pending_switches=pending
    )


def test_no_stuck_no_switch():
    decision = FcfsPolicy().decide(view(), view(), cores_per_node=4)
    assert not decision.is_switch
    assert decision.reason == "no queue stuck"


def test_both_stuck_no_switch():
    decision = FcfsPolicy().decide(
        view(stuck(4)), view(stuck(4)), cores_per_node=4
    )
    assert not decision.is_switch


def test_windows_stuck_linux_donates():
    decision = FcfsPolicy().decide(
        view(idle=3), view(stuck(4), idle=0), cores_per_node=4
    )
    assert decision.target_os == "windows"
    assert decision.num_nodes == 1  # ceil(4/4)


def test_linux_stuck_windows_donates():
    decision = FcfsPolicy().decide(
        view(stuck(16), idle=0), view(idle=8), cores_per_node=4
    )
    assert decision.target_os == "linux"
    assert decision.num_nodes == 4  # ceil(16/4)


def test_donation_capped_by_idle_nodes():
    decision = FcfsPolicy().decide(
        view(stuck(64)), view(idle=2), cores_per_node=4
    )
    assert decision.num_nodes == 2


def test_no_idle_donor_means_no_switch():
    decision = FcfsPolicy().decide(
        view(stuck(4)), view(idle=0), cores_per_node=4
    )
    assert not decision.is_switch
    assert "no idle nodes" in decision.reason


def test_pending_switches_subtracted():
    decision = FcfsPolicy().decide(
        view(stuck(16), pending=3), view(idle=8), cores_per_node=4
    )
    assert decision.num_nodes == 1  # 4 needed - 3 already in flight


def test_pending_covers_need_no_extra_switch():
    decision = FcfsPolicy().decide(
        view(stuck(4), pending=1), view(idle=8), cores_per_node=4
    )
    assert not decision.is_switch


def test_at_least_one_node_even_for_tiny_jobs():
    decision = FcfsPolicy().decide(
        view(stuck(1)), view(idle=5), cores_per_node=4
    )
    assert decision.num_nodes == 1


def test_threshold_policy_waits_for_streak():
    policy = ThresholdPolicy(threshold=3)
    for _ in range(2):
        decision = policy.decide(view(stuck(4)), view(idle=4), cores_per_node=4)
        assert not decision.is_switch
    decision = policy.decide(view(stuck(4)), view(idle=4), cores_per_node=4)
    assert decision.is_switch and decision.target_os == "linux"


def test_threshold_policy_resets_on_recovery():
    policy = ThresholdPolicy(threshold=2)
    policy.decide(view(stuck(4)), view(idle=4), cores_per_node=4)
    policy.decide(view(), view(idle=4), cores_per_node=4)  # recovered
    decision = policy.decide(view(stuck(4)), view(idle=4), cores_per_node=4)
    assert not decision.is_switch  # streak restarted


def test_threshold_validation():
    with pytest.raises(ValueError):
        ThresholdPolicy(threshold=0)


def test_reserve_policy_respects_floor():
    policy = ReservePolicy(min_linux=6, min_windows=2)
    # windows stuck, linux would donate 4 but has 8 total, floor 6 -> max 2
    decision = policy.decide(
        view(idle=8, total=8), view(stuck(16), total=0), cores_per_node=4
    )
    assert decision.target_os == "windows"
    assert decision.num_nodes == 2


def test_reserve_policy_blocks_at_floor():
    policy = ReservePolicy(min_linux=8)
    decision = policy.decide(
        view(idle=8, total=8), view(stuck(4), total=0), cores_per_node=4
    )
    assert not decision.is_switch
    assert "reserve floor" in decision.reason


def test_decision_helpers():
    assert not SwitchDecision.nothing().is_switch
    assert SwitchDecision(target_os="linux", num_nodes=2).is_switch
