"""Long-horizon soak: two simulated days on the full Eridani replica.

Invariants that must hold over thousands of events: core conservation,
no lost jobs, no stuck switch jobs, bounded switching, closed intervals.
"""

import pytest

from repro.compare import HybridSystem, run_scenario
from repro.core.config import MiddlewareConfig
from repro.core.policy import EagerPolicy
from repro.simkernel import HOUR, MINUTE
from repro.workloads import MixedWorkload


@pytest.fixture(scope="module", params=["v2-fcfs", "v2-eager", "v1-fcfs"])
def soak(request):
    version = 1 if request.param.startswith("v1") else 2
    eager = request.param.endswith("eager")
    system = HybridSystem(
        num_nodes=16, seed=99, version=version,
        config=MiddlewareConfig(
            version=version, check_cycle_s=10 * MINUTE,
            eager_detectors=eager,
        ),
        policy=EagerPolicy() if eager else None,
        label_suffix=f"-{request.param}",
    )
    jobs = MixedWorkload(
        seed=99, rate_per_hour=10.0, windows_fraction=0.35,
        horizon_s=48 * HOUR, max_cores=16, runtime_scale=0.3,
    ).generate()
    result = run_scenario(system, jobs, horizon_s=48 * HOUR)
    return system, jobs, result


def test_every_job_accounted_for(soak):
    system, jobs, result = soak
    assert result.submitted == len(jobs) > 300
    assert result.completed + result.rejected <= result.submitted
    assert result.rejected == 0
    # drain leaves at most a handful of stragglers
    assert result.completed >= result.submitted - 5


def test_no_switch_jobs_left_behind(soak):
    system, _, _ = soak
    pbs = system.middleware.pbs
    leftovers = [
        j for j in pbs.jobs.values()
        if j.tag == "os-switch" and j.state.value in ("Q", "R")
    ]
    assert leftovers == []
    win_leftovers = [
        j for j in system.middleware.winhpc.jobs.values()
        if j.tag == "os-switch" and j.state.value in ("Queued", "Running")
    ]
    assert win_leftovers == []


def test_core_accounting_consistent_at_end(soak):
    system, _, _ = soak
    middleware = system.middleware
    for record in middleware.pbs.nodes.values():
        assert len(record.core_jobs) == 0  # everything released
    for record in middleware.winhpc.nodes.values():
        assert record.cores_in_use == 0


def test_no_node_ever_bricked(soak):
    system, _, _ = soak
    assert system.middleware.cluster.failed_nodes() == []


def test_waits_non_negative_and_finite(soak):
    system, _, result = soak
    for record in system.recorder.workload_jobs():
        if record.wait_s is not None:
            assert 0 <= record.wait_s < 48 * HOUR


def test_intervals_closed_and_ordered(soak):
    system, _, _ = soak
    per_node = {}
    for interval in system.recorder.intervals:
        per_node.setdefault(interval.node, []).append(interval)
    for node, intervals in per_node.items():
        for earlier, later in zip(intervals, intervals[1:]):
            assert earlier.end is not None
            assert earlier.end <= later.start  # reboot gap in between


def test_switch_rate_bounded(soak):
    system, _, result = soak
    # one decision per 10-minute cycle over 48h bounds switching hard
    assert 0 < result.switches < 48 * 6
