"""Communicator + SwitchOrders unit tests (outside the full middleware)."""

import pytest

from repro.core.communicator import (
    LinuxCommunicator,
    SwitchOrders,
    WindowsCommunicator,
)
from repro.core.controller import DualBootMenuSpec
from repro.core.controller_v2 import ControllerV2
from repro.core.detector import PbsDetector, WinHpcDetector
from repro.core.policy import FcfsPolicy
from repro.core.wire import QueueStateMessage
from repro.errors import MiddlewareError
from repro.netsvc import DhcpServer, Network, TftpServer
from repro.pbs import JobSpec, PbsCommands, PbsServer
from repro.simkernel import MINUTE, Simulator
from repro.storage import Filesystem, FsType
from repro.winhpc import HpcSchedulerConnection, WinHpcScheduler, WinJobSpec


@pytest.fixture()
def rig():
    """PBS + WinHPC + v2 controller on a bare network (no real nodes)."""
    sim = Simulator()
    network = Network(sim)
    linhead = network.register("eridani")
    winhead = network.register("winhead")

    pbs = PbsServer(sim)
    for i in range(1, 5):
        pbs.create_node(f"enode{i:02d}", np=4)
        pbs.node_up(f"enode{i:02d}")
    winhpc = WinHpcScheduler(sim)
    for i in range(1, 5):
        winhpc.add_node(f"enode{i:02d}", cores=4)

    fs = Filesystem(FsType.EXT3)
    controller = ControllerV2(
        DualBootMenuSpec(boot_partition=2, root_partition=6),
        tftp=TftpServer(fs),
        dhcp=DhcpServer(),
    )
    controller.prepare_cluster()
    orders = SwitchOrders(pbs, winhpc, controller)
    listener = linhead.listen(5800)
    linux = LinuxCommunicator(
        sim=sim,
        listener=listener,
        detector=PbsDetector(PbsCommands(pbs)),
        policy=FcfsPolicy(),
        orders=orders,
        cores_per_node=4,
    )
    sdk = HpcSchedulerConnection()
    sdk.connect(winhpc)
    windows = WindowsCommunicator(
        sim=sim,
        host=winhead,
        detector=WinHpcDetector(sdk),
        linux_head="eridani",
        port=5800,
        cycle_s=10 * MINUTE,
    )
    return sim, pbs, winhpc, controller, orders, linux, windows, listener


def test_windows_communicator_reports_every_cycle(rig):
    sim, *_, windows, listener = rig
    sim.spawn(windows.run())
    sim.run(until=35 * MINUTE)
    assert windows.reports_sent == 4  # t=0,10,20,30
    assert len(listener) == 4
    message = listener.try_get()
    assert message.payload == "00000none"


def test_cycle_validation(rig):
    sim, *_, windows, _ = rig
    with pytest.raises(MiddlewareError):
        WindowsCommunicator(
            sim=sim, host=windows.host, detector=windows.detector,
            linux_head="eridani", port=1, cycle_s=0,
        )


def test_handle_no_demand_decides_nothing(rig):
    sim, pbs, winhpc, controller, orders, linux, *_ = rig
    decision = linux.handle("00000none")
    assert not decision.is_switch
    assert len(linux.decisions) == 1
    assert linux.decisions[0].linux_wire == "00000none"


def test_handle_windows_stuck_issues_pbs_switch_jobs(rig):
    sim, pbs, winhpc, controller, orders, linux, *_ = rig
    decision = linux.handle(
        QueueStateMessage.stuck_queue(8, "7").encode()
    )
    assert decision.target_os == "windows"
    assert decision.num_nodes == 2  # 8 cpus / 4 per node
    assert orders.pending_to_windows() == 2
    assert controller.current_target() == "windows"
    switch_jobs = [j for j in pbs.jobs.values() if j.tag == "os-switch"]
    assert len(switch_jobs) == 2
    assert all(j.name == "release_1_node" for j in switch_jobs)


def test_pending_switches_prevent_double_issue(rig):
    sim, pbs, winhpc, controller, orders, linux, *_ = rig
    wire = QueueStateMessage.stuck_queue(8, "7").encode()
    linux.handle(wire)
    decision = linux.handle(wire)  # next cycle, switches still pending
    assert not decision.is_switch
    assert orders.pending_to_windows() == 2  # unchanged


def test_handle_linux_stuck_issues_winhpc_switch_jobs(rig):
    sim, pbs, winhpc, controller, orders, linux, *_ = rig
    # make linux stuck: all PBS nodes down + one queued job
    for host in list(pbs.nodes):
        pbs.node_down(host)
    pbs.qsub(JobSpec(name="md", nodes=1, ppn=4, runtime_s=60.0))
    # windows side has idle nodes
    for i in range(1, 5):
        winhpc.node_online(f"enode{i:02d}")
    decision = linux.handle("00000none")
    assert decision.target_os == "linux"
    assert decision.num_nodes == 1
    assert orders.pending_to_linux() == 1
    assert controller.current_target() == "linux"
    switch_jobs = [j for j in winhpc.jobs.values() if j.tag == "os-switch"]
    assert len(switch_jobs) == 1
    assert switch_jobs[0].unit.value == "Node"


def test_both_stuck_no_orders(rig):
    sim, pbs, winhpc, controller, orders, linux, *_ = rig
    for host in list(pbs.nodes):
        pbs.node_down(host)
    pbs.qsub(JobSpec(name="md", nodes=1, ppn=4, runtime_s=60.0))
    decision = linux.handle(QueueStateMessage.stuck_queue(4, "9").encode())
    assert not decision.is_switch
    assert orders.orders_issued == 0


def test_daemon_loop_reacts_to_incoming_wire(rig):
    sim, pbs, winhpc, controller, orders, linux, windows, listener = rig
    sim.spawn(linux.run())
    winhpc_job = winhpc.submit(
        WinJobSpec(name="render", amount=4, runtime_s=60.0)
    )  # queued: no online windows nodes -> windows stuck
    sim.spawn(windows.run())
    sim.run(until=1 * MINUTE)
    assert len(linux.decisions) == 1
    assert linux.decisions[0].decision.is_switch
