"""Hardened control plane: acks/retry, tolerant decode, staleness guard,
order ledger + watchdog, daemon crash/restart.

Unit tests drive the communicators on a bare network (no real nodes);
integration tests torture the full middleware through its fault surface.
"""

import pytest

from repro.core import MiddlewareConfig, build_hybrid_cluster
from repro.core.communicator import (
    LinuxCommunicator,
    SwitchOrders,
    WindowsCommunicator,
)
from repro.core.controller import DualBootMenuSpec
from repro.core.controller_v2 import ControllerV2
from repro.core.detector import PbsDetector, WinHpcDetector
from repro.core.policy import FcfsPolicy
from repro.core.switchjob import OrderState
from repro.core.wire import QueueStateMessage
from repro.errors import MiddlewareError
from repro.faults import BootHang, FaultInjector, FaultPlan
from repro.netsvc import DhcpServer, Network, TftpServer
from repro.pbs import JobSpec, PbsCommands, PbsServer
from repro.pbs.job import JobState
from repro.simkernel import HOUR, MINUTE, Simulator
from repro.simkernel.rng import RngStreams
from repro.storage import Filesystem, FsType
from repro.winhpc import HpcSchedulerConnection, WinHpcScheduler
from repro.winhpc.job import WinJobState

CYCLE = 10 * MINUTE
STUCK_WIRE = QueueStateMessage.stuck_queue(4, "7").encode()


@pytest.fixture()
def rig():
    """PBS + WinHPC + v2 controller + ack-enabled communicators, no nodes."""
    sim = Simulator()
    network = Network(sim)
    linhead = network.register("eridani")
    winhead = network.register("winhead")

    pbs = PbsServer(sim)
    for i in range(1, 5):
        pbs.create_node(f"enode{i:02d}", np=4)
        pbs.node_up(f"enode{i:02d}")
    winhpc = WinHpcScheduler(sim)
    for i in range(1, 5):
        winhpc.add_node(f"enode{i:02d}", cores=4)

    controller = ControllerV2(
        DualBootMenuSpec(boot_partition=2, root_partition=6),
        tftp=TftpServer(Filesystem(FsType.EXT3)),
        dhcp=DhcpServer(),
    )
    controller.prepare_cluster()
    orders = SwitchOrders(pbs, winhpc, controller, order_timeout_s=15 * MINUTE)
    linux = LinuxCommunicator(
        sim=sim,
        listener=linhead.listen(5800),
        detector=PbsDetector(PbsCommands(pbs)),
        policy=FcfsPolicy(),
        orders=orders,
        cores_per_node=4,
        host=linhead,
        ack_port=5801,
        cycle_s=CYCLE,
        staleness_cycles=2,
    )
    sdk = HpcSchedulerConnection()
    sdk.connect(winhpc)
    windows = WindowsCommunicator(
        sim=sim,
        host=winhead,
        detector=WinHpcDetector(sdk),
        linux_head="eridani",
        port=5800,
        cycle_s=CYCLE,
        ack_listener=winhead.listen(5801),
        max_retries=2,
        retry_base_s=5.0,
        ack_timeout_s=10.0,
        rng=RngStreams(11).spawn("communicator"),
    )
    return sim, network, pbs, winhpc, orders, linux, windows, linhead, winhead


# -- ack + retry --------------------------------------------------------------


def test_clean_network_every_report_acked_first_try(rig):
    sim, _, _, _, _, linux, windows, *_ = rig
    sim.spawn(linux.run())
    sim.spawn(windows.run())
    sim.run(until=35 * MINUTE)
    assert windows.reports_sent == 4      # t=0,10,20,30 — retries would inflate
    assert windows.reports_acked == 4
    assert windows.retries == 0
    assert windows.reports_failed == 0
    assert linux.acks_sent == 4
    assert linux.reports_received == 4


def test_unacked_report_retries_with_backoff_then_gives_up(rig):
    sim, _, _, _, _, linux, windows, linhead, _ = rig
    linhead.online = False  # nobody home: every send is dropped
    sim.spawn(windows.run())
    sim.run(until=9 * MINUTE)  # one cycle worth of attempts
    assert windows.reports_sent == 3   # original + 2 retries
    assert windows.retries == 2
    assert windows.reports_failed == 1
    assert windows.reports_acked == 0


def test_retry_recovers_a_lost_first_send(rig):
    sim, network, _, _, _, linux, windows, *_ = rig
    # drop exactly the first report, pass everything else
    seen = {"n": 0}

    def drop_first(message):
        from repro.netsvc import DeliveryVerdict

        if isinstance(message.payload, str) and message.port == 5800:
            seen["n"] += 1
            if seen["n"] == 1:
                return DeliveryVerdict(drop=True)
        return None

    network.add_tap(drop_first)
    sim.spawn(linux.run())
    sim.spawn(windows.run())
    sim.run(until=5 * MINUTE)
    assert windows.retries == 1
    assert windows.reports_acked == 1      # the retry landed
    assert linux.reports_received == 1
    # the cycle cadence is epoch-aligned: retries don't skew the next report
    sim.run(until=15 * MINUTE)
    assert windows.reports_acked == 2


def test_retry_config_validation(rig):
    sim, *_, windows, _, winhead = rig
    with pytest.raises(MiddlewareError):
        WindowsCommunicator(
            sim=sim, host=winhead, detector=windows.detector,
            linux_head="eridani", port=1, cycle_s=CYCLE, max_retries=-1,
        )
    with pytest.raises(MiddlewareError):
        WindowsCommunicator(
            sim=sim, host=winhead, detector=windows.detector,
            linux_head="eridani", port=1, cycle_s=CYCLE, retry_base_s=0.0,
        )


# -- tolerant decode ----------------------------------------------------------


def test_corrupt_wire_counted_and_discarded(rig):
    sim, _, _, _, _, linux, _, _, winhead = rig
    sim.spawn(linux.run())
    winhead.send("eridani", 5800, "Xgarbage")
    winhead.send("eridani", 5800, 12345)        # not even a string
    winhead.send("eridani", 5800, "00000none")  # a good one after the noise
    sim.run(until=1 * MINUTE)
    assert linux.corrupt_reports == 2
    assert linux.reports_received == 1
    assert len(linux.decisions) == 1            # only the valid wire decided
    assert linux.acks_sent == 1                 # corrupt wires are never acked


def test_handle_still_raises_on_corrupt_wire(rig):
    """The strict entry point keeps its contract for direct callers."""
    _, _, _, _, _, linux, *_ = rig
    with pytest.raises(MiddlewareError):
        linux.handle("not-a-wire")


# -- staleness guard ----------------------------------------------------------


def test_tick_noop_while_report_is_fresh(rig):
    sim, _, _, _, _, linux, *_ = rig
    linux.handle("00000none")
    sim.run(until=5 * MINUTE)  # half a cycle
    before = len(linux.decisions)
    linux.tick()
    assert len(linux.decisions) == before
    assert linux.stale_skips == 0


def test_tick_reevaluates_within_the_cap(rig):
    sim, _, _, _, _, linux, *_ = rig
    linux.handle(STUCK_WIRE)
    sim.run(until=15 * MINUTE)  # 1.5 cycles old: missed one report
    before = len(linux.decisions)
    linux.tick()
    assert len(linux.decisions) == before + 1
    assert linux.decisions[-1].windows_wire == STUCK_WIRE
    assert linux.stale_skips == 0


def test_tick_never_decides_on_a_report_past_the_cap(rig):
    sim, _, _, _, orders, linux, *_ = rig
    linux.handle("00000none")
    issued_before = orders.orders_issued
    sim.run(until=25 * MINUTE)  # cap is 2 cycles = 20 minutes
    linux.tick()
    assert linux.stale_skips == 1
    last = linux.decisions[-1]
    assert not last.decision.is_switch
    assert "stale" in last.decision.reason
    assert orders.orders_issued == issued_before


def test_tick_without_cycle_is_a_noop():
    """Communicators built the old way (no cycle_s) never tick-decide."""
    sim = Simulator()
    network = Network(sim)
    linhead = network.register("eridani")
    pbs = PbsServer(sim)
    winhpc = WinHpcScheduler(sim)
    controller = ControllerV2(
        DualBootMenuSpec(boot_partition=2, root_partition=6),
        tftp=TftpServer(Filesystem(FsType.EXT3)),
        dhcp=DhcpServer(),
    )
    controller.prepare_cluster()
    linux = LinuxCommunicator(
        sim=sim,
        listener=linhead.listen(5800),
        detector=PbsDetector(PbsCommands(pbs)),
        policy=FcfsPolicy(),
        orders=SwitchOrders(pbs, winhpc, controller),
    )
    assert linux.staleness_cap_s is None
    sim.run(until=1 * HOUR)
    linux.tick()
    assert linux.decisions == []


def test_staleness_validation(rig):
    sim, _, pbs, winhpc, orders, linux, *_ = rig
    with pytest.raises(MiddlewareError):
        LinuxCommunicator(
            sim=sim, listener=linux.listener, detector=linux.detector,
            policy=linux.policy, orders=orders, staleness_cycles=0,
        )


# -- order ledger + watchdog --------------------------------------------------


def test_issue_records_pending_orders(rig):
    _, _, pbs, _, orders, linux, *_ = rig
    linux.handle(QueueStateMessage.stuck_queue(8, "7").encode())
    assert orders.orders_issued == 2
    assert orders.in_flight("windows") == 2
    assert all(o.state is OrderState.PENDING for o in orders.orders)
    assert all(o.jobid in pbs.jobs for o in orders.orders)
    assert all(o.deadline == o.issued_at + 15 * MINUTE for o in orders.orders)


def test_node_join_confirms_oldest_pending_order(rig):
    _, _, _, winhpc, orders, linux, *_ = rig
    linux.handle(QueueStateMessage.stuck_queue(8, "7").encode())
    winhpc.node_online("enode01")
    assert orders.orders_confirmed == 1
    assert orders.in_flight("windows") == 1
    confirmed = [o for o in orders.orders if o.state is OrderState.CONFIRMED]
    assert confirmed[0].order_id == orders.orders[0].order_id  # FIFO
    assert confirmed[0].node == "enode01"


def test_join_with_no_pending_orders_is_ignored(rig):
    _, _, _, winhpc, orders, *_ = rig
    winhpc.node_online("enode01")  # e.g. initial deployment joins
    assert orders.orders_confirmed == 0


def test_expire_fails_overdue_orders_and_frees_in_flight(rig):
    sim, _, _, _, orders, linux, *_ = rig
    linux.handle(STUCK_WIRE)
    assert orders.in_flight("windows") == 1
    sim.run(until=16 * MINUTE)
    expired = orders.expire(sim.now)
    assert [o.state for o in expired] == [OrderState.FAILED]
    assert orders.orders_failed == 1
    assert orders.in_flight("windows") == 0
    # a later expire pass does not double-fail
    assert orders.expire(sim.now + HOUR) == []


def test_expire_cancels_a_still_queued_switch_job(rig):
    from repro.core.switchjob import pbs_switch_jobspec

    sim, _, pbs, _, orders, linux, *_ = rig
    # occupy every donor node so a switch job queues instead of starting
    pbs.qsub(JobSpec(name="busy", nodes=4, ppn=4, runtime_s=HOUR))
    script = orders.controller.linux_switch_script("windows")
    jobid = pbs.qsub(pbs_switch_jobspec(script), owner="sliang")
    orders._record("windows", jobid)
    assert pbs.jobs[jobid].state is JobState.QUEUED
    sim.run(until=16 * MINUTE)
    orders.expire(sim.now)
    assert orders.orders_failed == 1
    assert pbs.jobs[jobid].state is JobState.COMPLETED
    assert pbs.jobs[jobid].exit_status == 271


def test_order_timeout_validation(rig):
    _, _, pbs, winhpc, orders, *_ = rig
    with pytest.raises(MiddlewareError):
        SwitchOrders(pbs, winhpc, orders.controller, order_timeout_s=0)


def test_pending_to_linux_uses_enum_states(rig):
    """The WinHPC scan must track Queued AND Running switch jobs via the
    enum (the old raw-string compare was fragile)."""
    _, _, pbs, winhpc, orders, linux, *_ = rig
    for host in list(pbs.nodes):
        pbs.node_down(host)
    pbs.qsub(JobSpec(name="md", nodes=1, ppn=4, runtime_s=60.0))
    for i in range(1, 5):
        winhpc.node_online(f"enode{i:02d}")
    linux.handle("00000none")
    assert orders.pending_to_linux() == 1
    job = [j for j in winhpc.jobs.values() if j.tag == "os-switch"][0]
    assert job.state in (WinJobState.QUEUED, WinJobState.RUNNING)


# -- integration: crash/restart + watchdog through the full middleware --------


def deployed(**kw):
    hybrid = build_hybrid_cluster(
        num_nodes=4, seed=13, version=2,
        config=MiddlewareConfig(version=2, check_cycle_s=5 * MINUTE, **kw),
    )
    hybrid.deploy()
    hybrid.wait_for_nodes()
    return hybrid


def test_windows_head_crash_and_restart_recovers():
    hybrid = deployed()
    daemons = hybrid.daemons
    daemons.crash("windows")
    assert not daemons.windows_process.alive
    before = daemons.windows.reports_sent
    hybrid.sim.run(until=hybrid.sim.now + 30 * MINUTE)
    assert daemons.windows.reports_sent == before  # silence
    assert daemons.linux.stale_skips > 0           # linux noticed
    daemons.restart("windows")
    hybrid.sim.run(until=hybrid.sim.now + 30 * MINUTE)
    assert daemons.windows.reports_sent > before
    assert daemons.windows.reports_acked > 0


def test_linux_head_crash_reports_fail_then_recover():
    hybrid = deployed()
    daemons = hybrid.daemons
    acked_before = None
    hybrid.sim.run(until=hybrid.sim.now + 1 * MINUTE)
    daemons.crash("linux")
    hybrid.sim.run(until=hybrid.sim.now + 20 * MINUTE)
    assert daemons.windows.reports_failed > 0
    assert daemons.windows.retries > 0
    acked_before = daemons.windows.reports_acked
    daemons.restart("linux")
    hybrid.sim.run(until=hybrid.sim.now + 20 * MINUTE)
    assert daemons.windows.reports_acked > acked_before


def test_crash_is_idempotent_and_sides_validated():
    hybrid = deployed()
    daemons = hybrid.daemons
    daemons.crash("windows")
    daemons.crash("windows")  # no-op
    daemons.restart("windows")
    daemons.restart("windows")  # no-op
    with pytest.raises(MiddlewareError):
        daemons.crash("solaris")


def test_watchdog_fails_hung_switch_order_and_reissues():
    """ISSUE acceptance: inject hang-at-boot under a switch order; the
    order must fail, in-flight must return to zero, and a later cycle
    must re-issue the switch."""
    hybrid = deployed(order_timeout_s=10 * MINUTE, watchdog_poll_s=MINUTE)
    injector = FaultInjector(
        hybrid.sim,
        hybrid.cluster.network,
        hybrid.cluster.rng,
        FaultPlan(name="hang", boot_hangs=(BootHang(times=1),)),
        env=hybrid.cluster.env,
    )
    injector.arm()
    orders = hybrid.daemons.orders
    win_job = hybrid.submit_windows_job("render", cores=4, runtime_s=5 * MINUTE)
    hybrid.sim.run(until=hybrid.sim.now + 2 * HOUR)

    assert injector.counters["boot-hang"] == 1
    assert orders.orders_failed == 1               # the hung node's order
    assert orders.orders_issued >= 2               # watchdog freed a re-issue
    assert orders.orders_confirmed >= 1            # the second donor made it
    assert orders.in_flight("windows") == 0        # nothing leaked
    assert win_job.state is WinJobState.FINISHED   # the workload ran anyway
    assert len(hybrid.cluster.failed_nodes()) == 1
