"""Elasticity manager decision logic, one evaluation at a time.

The manager is constructed by hand over a deployed hybrid stack (with
``elastic_enabled`` off, so no background loop interferes) and
``evaluate()`` is called explicitly — each test drives exactly the
decision rounds it wants and inspects the counters, the cordons, the
rejoin ledger and the ``elastic.decision`` trace stream.
"""

from types import SimpleNamespace

import pytest

from repro.core import MiddlewareConfig, build_hybrid_cluster
from repro.core.elasticity import ElasticityManager, ElasticityPolicy
from repro.errors import ConfigurationError
from repro.hardware.node import NodeState
from repro.simkernel import MINUTE
from repro.trace.events import ELASTIC_DECISION


def build(num_nodes=4, **policy_kw):
    hybrid = build_hybrid_cluster(
        num_nodes=num_nodes, seed=1, version=2,
        config=MiddlewareConfig(version=2, check_cycle_s=10 * MINUTE),
    )
    hybrid.deploy()
    hybrid.wait_for_nodes()
    manager = ElasticityManager(
        hybrid.sim,
        hybrid.cluster,
        hybrid.pbs,
        hybrid.winhpc,
        policy=ElasticityPolicy(**policy_kw),
        orders=hybrid.daemons.orders,
        health=hybrid.health,
        linux_comm=hybrid.daemons.linux,
        controller=hybrid.controller,
        tracer=hybrid.tracer,
    )
    return hybrid, manager


def node_by_name(hybrid, name):
    return next(n for n in hybrid.cluster.compute_nodes if n.name == name)


def decisions(hybrid, action):
    return [e for e in hybrid.tracer.events_of(ELASTIC_DECISION)
            if e.fields["action"] == action]


def test_policy_validation():
    with pytest.raises(ConfigurationError):
        ElasticityPolicy(min_online=-1)
    with pytest.raises(ConfigurationError):
        ElasticityPolicy(hysteresis_cycles=0)
    with pytest.raises(ConfigurationError):
        ElasticityPolicy(idle_surplus=-1)
    with pytest.raises(ConfigurationError):
        ElasticityPolicy(max_actions_per_cycle=0)


def test_hysteresis_holds_the_first_surplus_evaluation():
    hybrid, manager = build(
        hysteresis_cycles=2, idle_surplus=0, min_online=1,
        max_actions_per_cycle=10,
    )
    manager.evaluate()
    assert manager.suspends == 0          # streak 1 < hysteresis 2
    manager.evaluate()
    assert manager.suspends == 3          # 4 idle, floor keeps one up
    hybrid.sim.run(until=hybrid.sim.now + 2 * MINUTE)

    # victims are the highest-named idle nodes; the floor survivor is 01
    assert node_by_name(hybrid, "enode01").state is NodeState.UP
    for name in ("enode02", "enode03", "enode04"):
        assert node_by_name(hybrid, name).state is NodeState.SUSPENDED


def test_min_online_floor_blocks_all_suspends():
    hybrid, manager = build(
        hysteresis_cycles=1, idle_surplus=0, min_online=4,
        max_actions_per_cycle=10,
    )
    for _ in range(5):
        manager.evaluate()
    assert manager.suspends == 0
    assert all(n.state is NodeState.UP for n in hybrid.cluster.compute_nodes)


def test_action_budget_caps_suspends_per_cycle():
    hybrid, manager = build(
        hysteresis_cycles=1, idle_surplus=0, min_online=0,
        max_actions_per_cycle=2,
    )
    manager.evaluate()
    assert manager.suspends == 2


def test_victims_are_cordoned_before_shutdown():
    hybrid, manager = build(
        hysteresis_cycles=1, idle_surplus=0, min_online=1,
        max_actions_per_cycle=10,
    )
    manager.evaluate()
    # inspected before the suspend processes run: the PBS record is
    # already offline, so nothing can be placed during the shutdown
    for name in ("enode02", "enode03", "enode04"):
        record = hybrid.pbs.nodes[hybrid.pbs.fqdn(name)]
        assert record.state.value == "offline"
    assert len(decisions(hybrid, "suspend")) == 3


def test_pressure_resumes_lowest_named_first_with_rejoin_expected():
    hybrid, manager = build(
        hysteresis_cycles=1, idle_surplus=0, min_online=1,
        max_actions_per_cycle=1,
    )
    manager.evaluate()                    # parks enode04
    hybrid.sim.run(until=hybrid.sim.now + 2 * MINUTE)
    manager.evaluate()                    # parks enode03
    hybrid.sim.run(until=hybrid.sim.now + 2 * MINUTE)
    assert manager.suspends == 2

    # fill both remaining UP nodes, then one more job to back the queue up
    for index in range(3):
        hybrid.submit_linux_job(f"pressure-{index}", nodes=1, ppn=4,
                                runtime_s=600.0)
    manager.evaluate()
    assert manager.resumes == 1
    resumed = decisions(hybrid, "resume")
    assert [e.node for e in resumed] == ["enode03"]   # lowest name first
    assert "queued" in resumed[0].cause
    # the ledger was told: this join is a wake-up, not a switch landing
    assert "enode03" in hybrid.daemons.orders._expected_rejoins

    hybrid.sim.run(until=hybrid.sim.now + 2 * MINUTE)
    assert node_by_name(hybrid, "enode03").state is NodeState.UP
    # queue pressure also reset the surplus streak: no fresh suspends
    assert manager.suspends == 2


def test_provision_only_when_boots_land_on_the_pressured_side():
    hybrid, manager = build(
        hysteresis_cycles=1, idle_surplus=0, min_online=1,
        max_actions_per_cycle=4,
    )
    node_by_name(hybrid, "enode04").deprovision()
    hybrid.submit_linux_job("pressure", nodes=4, ppn=4, runtime_s=600.0)

    # boot flag absent: waking cold capacity would land on the wrong OS
    manager.controller = SimpleNamespace(
        has_cluster_flag=False, current_target=lambda: "linux"
    )
    manager.evaluate()
    assert manager.provisions == 0

    manager.controller = SimpleNamespace(
        has_cluster_flag=True, current_target=lambda: "windows"
    )
    manager.evaluate()
    assert manager.provisions == 0        # flag points at the other side

    manager.controller = SimpleNamespace(
        has_cluster_flag=True, current_target=lambda: "linux"
    )
    manager.evaluate()
    assert manager.provisions == 1
    assert [e.node for e in decisions(hybrid, "provision")] == ["enode04"]
    assert "enode04" in hybrid.daemons.orders._expected_rejoins


def test_stale_windows_report_holds_that_side():
    hybrid, manager = build(hysteresis_cycles=1, idle_surplus=0)
    comm = hybrid.daemons.linux
    assert comm.staleness_cap_s is not None

    comm.last_report_at = None            # no report ever received
    manager.evaluate()
    assert manager.stale_holds == 1

    comm.last_report_at = hybrid.sim.now - (comm.staleness_cap_s + 1.0)
    manager.evaluate()
    assert manager.stale_holds == 2

    holds = decisions(hybrid, "hold")
    assert len(holds) == 2
    assert all(e.fields["side"] == "windows" for e in holds)
    assert all(e.cause == "stale windows report" for e in holds)

    comm.last_report_at = hybrid.sim.now  # fresh again: no further holds
    manager.evaluate()
    assert manager.stale_holds == 2


def test_unhealthy_nodes_are_not_suspend_candidates():
    hybrid, manager = build(
        hysteresis_cycles=1, idle_surplus=0, min_online=0,
        max_actions_per_cycle=10,
    )
    # fake a non-healthy verdict for the would-be first victim
    real_health = hybrid.health

    class Judgy:
        def health(self, name):
            if name == "enode04":
                return SimpleNamespace(state=SimpleNamespace(value="suspect"))
            return real_health.health(name)

    manager.health = Judgy()
    manager.evaluate()
    assert node_by_name(hybrid, "enode04").state is NodeState.UP
    assert "enode04" not in [e.node for e in decisions(hybrid, "suspend")]
