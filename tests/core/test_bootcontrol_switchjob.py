"""bootcontrol.pl reimplementation + switch-job script generation."""

import pytest

from repro.boot.grubcfg import parse_grub_config
from repro.core.bootcontrol import (
    BOOTCONTROL_PATH,
    bootcontrol,
    register_bootcontrol,
    switch_grub_default,
)
from repro.core.switchjob import (
    pbs_switch_jobspec,
    pbs_switch_script_v1,
    pbs_switch_script_v2,
    windows_switch_bat_v1,
    windows_switch_bat_v2,
)
from repro.errors import MiddlewareError
from repro.oslayer import OSInstance
from repro.storage import Filesystem, FsType
from tests.conftest import CONTROLMENU_FIG3


def test_switch_grub_default_to_windows():
    out = switch_grub_default(CONTROLMENU_FIG3, "windows")
    assert parse_grub_config(out).default == 1
    # entries preserved
    assert "title CentOS-5.4_Oscar-5b2-linux" in out
    assert "title Win_Server_2K8_R2-windows" in out


def test_switch_grub_default_back_to_linux():
    windows_first = switch_grub_default(CONTROLMENU_FIG3, "windows")
    back = switch_grub_default(windows_first, "linux")
    assert parse_grub_config(back).default == 0


def test_switch_grub_default_bad_target():
    with pytest.raises(MiddlewareError):
        switch_grub_default(CONTROLMENU_FIG3, "solaris")


def make_os():
    root = Filesystem(FsType.EXT3)
    fat = Filesystem(FsType.FAT)
    fat.write("/controlmenu.lst", CONTROLMENU_FIG3)
    return OSInstance("linux", "enode01", {"/": root, "/boot/swap": fat}), fat


def test_bootcontrol_binary_edits_file():
    osi, fat = make_os()
    out = bootcontrol(osi, ["/boot/swap/controlmenu.lst", "windows"])
    assert "windows" in out
    assert parse_grub_config(fat.read("/controlmenu.lst")).default == 1


def test_bootcontrol_usage_error():
    osi, _ = make_os()
    with pytest.raises(MiddlewareError):
        bootcontrol(osi, ["only-one-arg"])


def test_register_bootcontrol():
    osi, _ = make_os()
    register_bootcontrol(osi)
    assert osi.find_binary(BOOTCONTROL_PATH) is bootcontrol


# -- script generation -----------------------------------------------------


def test_figure4_script_shape():
    script = pbs_switch_script_v1("windows", method="bootcontrol")
    assert "#PBS -l nodes=1:ppn=4" in script
    assert "#PBS -N release_1_node" in script
    assert "#PBS -q default" in script
    assert "#PBS -j oe" in script
    assert "#PBS -o reboot_log.out" in script
    assert "#PBS -r n" in script
    assert "sudo /boot/swap/bootcontrol.pl /boot/swap/controlmenu.lst windows" in script
    assert "sudo reboot" in script
    assert "sleep 10" in script


def test_rename_script_is_self_sustaining():
    script = pbs_switch_script_v1("windows", method="rename")
    # current menu stashed as the way back, then target goes live
    assert "mv /boot/swap/controlmenu.lst /boot/swap/controlmenu_to_linux.lst" in script
    assert "mv /boot/swap/controlmenu_to_windows.lst /boot/swap/controlmenu.lst" in script


def test_windows_bat_v1():
    bat = windows_switch_bat_v1("linux")
    assert "ren D:\\controlmenu.lst controlmenu_to_windows.lst" in bat
    assert "ren D:\\controlmenu_to_linux.lst controlmenu.lst" in bat
    assert "shutdown /r /t 0" in bat


def test_v2_scripts_only_reboot():
    linux = pbs_switch_script_v2()
    assert "bootcontrol" not in linux and "mv " not in linux
    assert "sudo reboot" in linux
    win = windows_switch_bat_v2()
    assert "ren" not in win
    assert "shutdown /r /t 0" in win


def test_invalid_targets_rejected():
    with pytest.raises(MiddlewareError):
        pbs_switch_script_v1("beos")
    with pytest.raises(MiddlewareError):
        windows_switch_bat_v1("beos")
    with pytest.raises(MiddlewareError):
        pbs_switch_script_v1("windows", method="telepathy")


def test_switch_jobspec_books_full_node_and_tagged():
    spec = pbs_switch_jobspec(pbs_switch_script_v1("windows"))
    assert (spec.nodes, spec.ppn) == (1, 4)
    assert spec.name == "release_1_node"
    assert not spec.rerunnable
    assert spec.tag == "os-switch"
