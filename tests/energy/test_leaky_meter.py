"""Seeded defect: a leaky meter must be caught by ``energy-conserved``.

The invariant is only worth its keep if it actually fails when the
accounting is wrong.  This plants a meter whose integration seam leaks
(scales every rectangle by 2 %) into an otherwise healthy run and
asserts the oracle flags it — and that the honest meter on the identical
timeline stays clean.
"""

from repro.energy import EnergyMeter
from repro.hardware import ComputeNode, INTEL_Q8200
from repro.hardware.nic import Nic, mac_for_index
from repro.simkernel import Simulator
from repro.simkernel.rng import RngStreams
from repro.trace import Tracer, check_events
from tests.conftest import make_v1_disk


class LeakyMeter(EnergyMeter):
    """Overstates every integration rectangle by 2 %.

    ``_integrate`` is the single seam every joule passes through, so
    scaling it models the whole family of accounting bugs (drift,
    double-counting, unit slips) with one line.
    """

    def _integrate(self, account, now):
        span = now - account.last_change_t
        honest = EnergyMeter._integrate
        honest(self, account, now)
        if span > 0.0:
            account.joules += 0.02 * account.watts * span


def _run_timeline(meter_cls):
    sim = Simulator()
    tracer = Tracer(sim)
    node = ComputeNode(
        sim=sim, name="enode01", spec=INTEL_Q8200,
        nic=Nic(mac_for_index(1)), rng=RngStreams(1),
    )
    node.disk = make_v1_disk()
    node.tracer = tracer
    meter = meter_cls(sim, tracer=tracer)
    meter.attach_node(node)

    node.power_on()
    sim.run()
    sim.run(until=sim.now + 300.0)
    node.suspend()
    sim.run()
    sim.run(until=sim.now + 300.0)
    node.resume()
    sim.run()
    meter.finalize()
    return tracer


def test_honest_meter_passes_the_invariant():
    tracer = _run_timeline(EnergyMeter)
    assert check_events(tracer.events, names=["energy-conserved"]) == []


def test_leaky_meter_is_caught():
    tracer = _run_timeline(LeakyMeter)
    violations = check_events(tracer.events, names=["energy-conserved"])
    assert violations, "a 2% energy leak sailed past energy-conserved"
    assert all(v.invariant == "energy-conserved" for v in violations)
    # the per-node report disagrees with its own watt history
    assert any("watt history integrates to" in v.message for v in violations)
