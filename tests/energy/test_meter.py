"""Energy meter vs hand-computed closed forms.

With every timing distribution pinned to zero variance, each phase of
the node's life has an exact duration, so the watt integral is a short
sum of rectangles computable on paper.  The meter must reproduce those
numbers exactly — any drift here means the E11 kWh tables are fiction.
"""

import pytest

from repro.energy import EnergyMeter, PowerModel
from repro.hardware import ComputeNode, INTEL_Q8200, NodeState
from repro.hardware.nic import Nic, mac_for_index
from repro.hardware.power import RebootTimingModel
from repro.simkernel import Simulator
from repro.simkernel.rng import RngStreams
from repro.trace import Tracer
from repro.trace.events import ENERGY_REPORT, ENERGY_STATE
from tests.conftest import make_v1_disk

#: every draw collapses to its mean: cold boot = 30 + 5 + 60 = 95 s,
#: suspend entry = 10 s, resume = 20 s, provisioning lead = 100 s
EXACT_TIMING = RebootTimingModel(
    shutdown=(30.0, 0.0, 30.0, 30.0),
    post=(30.0, 0.0, 30.0, 30.0),
    loader=(5.0, 0.0, 5.0, 5.0),
    linux_boot=(60.0, 0.0, 60.0, 60.0),
    windows_boot=(80.0, 0.0, 80.0, 80.0),
    pxe_overhead=(5.0, 0.0, 5.0, 5.0),
    suspend=(10.0, 0.0, 10.0, 10.0),
    resume=(20.0, 0.0, 20.0, 20.0),
    provision=(100.0, 0.0, 100.0, 100.0),
)

COLD_BOOT_S = 95.0


def make_rig(seed=1):
    sim = Simulator()
    node = ComputeNode(
        sim=sim,
        name="enode01",
        spec=INTEL_Q8200,
        nic=Nic(mac_for_index(1)),
        rng=RngStreams(seed),
        timing=EXACT_TIMING,
    )
    node.disk = make_v1_disk()
    tracer = Tracer(sim)
    node.tracer = tracer
    meter = EnergyMeter(sim, tracer=tracer)
    meter.attach_node(node)
    return sim, node, meter, tracer


class _PbsJob:
    def __init__(self, jobid, exec_slots):
        self.jobid = jobid
        self.exec_slots = exec_slots

    @property
    def key(self):
        return self.jobid

    def allocation_by_host(self):
        cores = {}
        for fqdn, _core in self.exec_slots:
            host = fqdn.split(".")[0]
            cores[host] = cores.get(host, 0) + 1
        return cores


def test_boot_idle_suspend_resume_closed_form():
    sim, node, meter, _ = make_rig()
    model = meter.model

    node.power_on()
    sim.run(until=COLD_BOOT_S)
    assert node.state is NodeState.UP
    # 95 s of boot transient, zero seconds OFF (power_on at t=0)
    assert meter.total_joules() == pytest.approx(95.0 * model.booting_w)

    sim.run(until=COLD_BOOT_S + 100.0)          # 100 s idle at 70 W
    node.suspend()
    sim.run(until=COLD_BOOT_S + 110.0)          # 10 s suspend entry at 120 W
    assert node.state is NodeState.SUSPENDED
    sim.run(until=COLD_BOOT_S + 210.0)          # 100 s parked at 6 W
    node.resume()
    sim.run(until=COLD_BOOT_S + 230.0)          # 20 s resume at 120 W
    assert node.state is NodeState.UP
    sim.run(until=COLD_BOOT_S + 330.0)          # 100 s idle again

    expected_by_state = {
        "booting": (95.0 + 20.0) * model.booting_w,
        "shutting_down": 10.0 * model.booting_w,
        "up": 200.0 * model.idle_w,
        "suspended": 100.0 * model.suspended_w,
    }
    by_state = meter.joules_by_state()
    assert by_state == pytest.approx(expected_by_state)
    assert meter.total_joules() == pytest.approx(sum(expected_by_state.values()))
    assert meter.total_kwh() == pytest.approx(
        sum(expected_by_state.values()) / 3_600_000.0
    )


def test_deprovisioned_span_is_free():
    sim, node, meter, _ = make_rig()
    node.deprovision()                           # instant, from OFF at t=0
    sim.run(until=500.0)
    assert node.state is NodeState.DEPROVISIONED
    assert meter.total_joules() == 0.0

    node.provision()
    sim.run(until=500.0 + 100.0 + COLD_BOOT_S)   # 100 s lead + cold boot
    assert node.state is NodeState.UP
    model = meter.model
    # the whole provisioning window (lead + boot chain) burns booting watts
    assert meter.node_joules("enode01") == pytest.approx(
        (100.0 + COLD_BOOT_S) * model.booting_w
    )


def test_busy_core_accounting_uses_started_snapshot():
    sim, node, meter, _ = make_rig()
    node.power_on()
    sim.run(until=COLD_BOOT_S)
    baseline = meter.total_joules()

    job = _PbsJob("7.ehead", [("enode01.cluster", 0), ("enode01.cluster", 1)])
    meter._job_event("pbs", "started", job)
    sim.run(until=COLD_BOOT_S + 50.0)            # 50 s at 70 + 2×22 W
    # the scheduler wipes exec_slots before observers hear "requeued" —
    # the meter must release the cores from its own snapshot anyway
    job.exec_slots = []
    meter._job_event("pbs", "requeued", job)
    sim.run(until=COLD_BOOT_S + 100.0)           # 50 s back at idle

    model = meter.model
    expected = 50.0 * (model.idle_w + 2 * model.core_w) + 50.0 * model.idle_w
    assert meter.total_joules() - baseline == pytest.approx(expected)

    account = meter.accounts["enode01"]
    assert account.busy_cores == 0
    # releasing an unknown job must not push the count negative
    meter._job_event("pbs", "finished", job)
    assert account.busy_cores == 0


def test_energy_state_emitted_only_on_watt_change():
    sim, node, meter, tracer = make_rig()
    node.power_on()
    sim.run(until=COLD_BOOT_S + 10.0)
    node.reboot()                                # SHUTTING_DOWN → BOOTING
    sim.run()

    states = [
        (e.fields["state"], e.fields["watts"])
        for e in tracer.events_of(ENERGY_STATE)
    ]
    # attach(off) → boot(120) → up(70) → reboot transient(120) → up(70):
    # the SHUTTING_DOWN→BOOTING hop inside the reboot draws the same
    # 120 W on both sides and must not emit a second event
    assert [w for _, w in states] == [3.0, 120.0, 70.0, 120.0, 70.0]
    assert states[3][0] == "shutting_down"


def test_finalize_is_idempotent_and_reports_every_node():
    sim, node, meter, tracer = make_rig()
    node.power_on()
    sim.run(until=COLD_BOOT_S + 100.0)
    meter.finalize()
    meter.finalize()

    reports = tracer.events_of(ENERGY_REPORT)
    assert len(reports) == 2                     # one node + the cluster line
    node_report, cluster_report = reports
    assert node_report.node == "enode01"
    assert cluster_report.node is None
    assert node_report.fields["joules"] == pytest.approx(
        cluster_report.fields["total_joules"]
    )
    assert cluster_report.fields["total_joules"] == pytest.approx(
        meter.total_joules()
    )
