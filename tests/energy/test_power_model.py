"""Watt-model units: the piecewise curve behind every joule in E11."""

import dataclasses

import pytest

from repro.energy import PowerModel
from repro.errors import ConfigurationError
from repro.hardware import NodeState


def test_default_watts_per_state():
    model = PowerModel()
    assert model.node_watts(NodeState.OFF) == 3.0
    assert model.node_watts(NodeState.SUSPENDED) == 6.0
    assert model.node_watts(NodeState.DEPROVISIONED) == 0.0
    assert model.node_watts(NodeState.UP) == 70.0


def test_transient_states_share_the_boot_band():
    model = PowerModel()
    for state in (NodeState.BOOTING, NodeState.SHUTTING_DOWN,
                  NodeState.FAILED):
        assert model.node_watts(state) == 120.0


def test_up_watts_scale_linearly_with_busy_cores():
    model = PowerModel()
    assert model.node_watts(NodeState.UP, busy_cores=1) == 92.0
    assert model.node_watts(NodeState.UP, busy_cores=4) == 158.0
    # load only matters while UP — a booting node has no governor
    assert model.node_watts(NodeState.BOOTING, busy_cores=4) == 120.0


def test_negative_busy_cores_clamp_to_idle():
    assert PowerModel().node_watts(NodeState.UP, busy_cores=-3) == 70.0


def test_custom_profile():
    model = PowerModel(idle_w=50.0, core_w=10.0, suspended_w=2.0)
    assert model.node_watts(NodeState.UP, busy_cores=2) == 70.0
    assert model.node_watts(NodeState.SUSPENDED) == 2.0


@pytest.mark.parametrize("field", [
    "off_w", "suspended_w", "booting_w", "idle_w", "core_w",
    "deprovisioned_w",
])
def test_negative_watts_rejected(field):
    with pytest.raises(ConfigurationError):
        PowerModel(**{field: -1.0})


def test_model_is_frozen():
    model = PowerModel()
    with pytest.raises(dataclasses.FrozenInstanceError):
        model.idle_w = 999.0  # type: ignore[misc]
