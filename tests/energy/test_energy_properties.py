"""Properties of the energy accounting chain.

Two layers are pinned here.  First, the ``energy-conserved`` oracle
itself: over arbitrary synthetic watt histories a correct report always
passes, the verdict survives a JSONL round trip and any event-order-
preserving interleave of the per-node streams, and a tampered total
always fails.  Second, the system end to end: the smallest power-aware
E11 configuration run twice with one seed yields byte-identical traces
and joule totals.
"""

from hypothesis import given, settings, strategies as st

from repro.trace import Tracer, check_events, check_jsonl
from repro.trace.events import ENERGY_REPORT, ENERGY_STATE, TraceEvent

INVARIANT = ["energy-conserved"]

watt_levels = st.floats(
    min_value=0.0, max_value=500.0, allow_nan=False, allow_infinity=False,
)
gaps = st.floats(
    min_value=0.01, max_value=1000.0, allow_nan=False, allow_infinity=False,
)

#: per node: the initial watt level, then (gap, new level) steps
histories = st.lists(
    st.tuples(watt_levels, st.lists(st.tuples(gaps, watt_levels), max_size=8)),
    min_size=1, max_size=3,
)


def _build_trace(node_histories):
    """Synthesize a per-node watt history plus *exact* reports.

    Joules are accumulated with the same arithmetic the invariant uses
    (one ``watts × span`` product per rectangle, summed in time order),
    so a correct meter matches to the last bit — the invariant's
    tolerance only has to absorb genuine accounting bugs.
    """
    events = []
    joules = {}
    ends = []
    for index, (initial_watts, steps) in enumerate(node_histories):
        node = f"enode{index + 1:02d}"
        t, watts = 0.0, initial_watts
        events.append((t, node, ENERGY_STATE, {"watts": watts}))
        total = 0.0
        for gap, new_watts in steps:
            total += watts * gap
            t += gap
            watts = new_watts
            events.append((t, node, ENERGY_STATE, {"watts": watts}))
        joules[node] = total
        ends.append(t)
    end = max(ends)
    for node in joules:
        # integrate the final level out to the common report time
        last_t = max(t for t, n, _, _ in events if n == node)
        last_w = [f["watts"] for t, n, _, f in events
                  if n == node and t == last_t][-1]
        joules[node] += last_w * (end - last_t)
        events.append((end, node, ENERGY_REPORT, {"joules": joules[node]}))
    events.append(
        (end, None, ENERGY_REPORT, {"total_joules": sum(joules.values())})
    )
    return events


def _materialize(rows, order=None):
    ordered = sorted(rows, key=order) if order is not None else rows
    return [
        TraceEvent(seq=i, time=t, kind=kind, node=node, fields=fields)
        for i, (t, node, kind, fields) in enumerate(ordered)
    ]


@settings(max_examples=60, deadline=None)
@given(histories)
def test_exact_reports_always_pass(node_histories):
    events = _materialize(_build_trace(node_histories))
    assert check_events(events, names=INVARIANT) == []


@settings(max_examples=40, deadline=None)
@given(histories)
def test_verdict_survives_jsonl_round_trip(node_histories):
    events = _materialize(_build_trace(node_histories))
    jsonl = "".join(e.to_json() + "\n" for e in events)
    assert check_jsonl(jsonl, names=INVARIANT) == []
    replayed = Tracer.load_jsonl(jsonl)
    assert [e.to_json() for e in replayed] == [e.to_json() for e in events]


@settings(max_examples=40, deadline=None)
@given(histories)
def test_totals_invariant_under_order_preserving_interleave(node_histories):
    rows = _build_trace(node_histories)
    # two different merges of the per-node streams; each keeps every
    # node's own events in time order, which is all the meter guarantees
    by_time = _materialize(rows, order=lambda r: (r[0], r[1] or "~"))
    by_node = _materialize(rows, order=lambda r: (r[1] or "~", r[0]))
    assert check_events(by_time, names=INVARIANT) == []
    assert check_events(by_node, names=INVARIANT) == []


@settings(max_examples=40, deadline=None)
@given(histories, st.floats(min_value=1.0, max_value=1e6))
def test_tampered_report_always_fails(node_histories, delta):
    rows = _build_trace(node_histories)
    tampered = []
    for t, node, kind, fields in rows:
        if kind == ENERGY_REPORT and node is not None:
            fields = {"joules": fields["joules"] + delta}
        tampered.append((t, node, kind, fields))
    violations = check_events(_materialize(tampered), names=INVARIANT)
    assert violations, f"a {delta} J overstatement passed energy-conserved"


def test_e11_same_seed_twice_is_byte_identical():
    """The determinism sweep at E11's own scale: one power-aware run of
    the smallest configuration, twice, must agree to the byte."""
    from repro.experiments.e11_energy import _energy_run
    from repro.simkernel import HOUR

    first_metrics, first_tracer = _energy_run(8, 0, 2 * HOUR, True)
    second_metrics, second_tracer = _energy_run(8, 0, 2 * HOUR, True)
    assert first_metrics == second_metrics
    assert first_tracer.export_jsonl() == second_tracer.export_jsonl()
    assert first_metrics["suspends"] >= 1
    assert check_events(first_tracer.events, names=INVARIANT) == []
