"""Unit tests for generator processes, events and combinators."""

import pytest

from repro.simkernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    ProcessKilled,
    Simulator,
    Timeout,
)
from repro.simkernel.events import EventError


@pytest.fixture()
def sim():
    return Simulator()


def test_timeout_suspends_for_duration(sim):
    log = []

    def proc():
        yield Timeout(2.5)
        log.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert log == [2.5]


def test_negative_timeout_rejected(sim):
    with pytest.raises(ValueError):
        Timeout(-1)


def test_process_return_value_via_join(sim):
    def child():
        yield Timeout(1)
        return 42

    results = []

    def parent():
        value = yield sim.spawn(child())
        results.append(value)

    sim.spawn(parent())
    sim.run()
    assert results == [42]


def test_process_result_property(sim):
    def child():
        yield Timeout(1)
        return "ok"

    proc = sim.spawn(child())
    with pytest.raises(RuntimeError):
        _ = proc.result
    sim.run()
    assert proc.result == "ok"
    assert not proc.alive


def test_event_wait_receives_value(sim):
    ev = sim.event()
    got = []

    def waiter():
        value = yield ev
        got.append((sim.now, value))

    sim.spawn(waiter())
    sim.schedule(3.0, ev.succeed, "payload")
    sim.run()
    assert got == [(3.0, "payload")]


def test_already_triggered_event_resumes_immediately(sim):
    ev = sim.event()
    ev.succeed("x")
    got = []

    def waiter():
        value = yield ev
        got.append((sim.now, value))

    sim.spawn(waiter())
    sim.run()
    assert got == [(0.0, "x")]


def test_event_double_trigger_raises(sim):
    ev = sim.event()
    ev.succeed()
    with pytest.raises(EventError):
        ev.succeed()


def test_event_fail_raises_in_waiter(sim):
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield ev
        except RuntimeError as e:
            caught.append(str(e))

    sim.spawn(waiter())
    sim.schedule(1.0, ev.fail, RuntimeError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_fail_requires_exception(sim):
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_uncaught_exception_propagates_to_joiner(sim):
    def bad():
        yield Timeout(1)
        raise ValueError("broken")

    caught = []

    def parent():
        try:
            yield sim.spawn(bad())
        except ValueError as e:
            caught.append(str(e))

    sim.spawn(parent())
    sim.run()
    assert caught == ["broken"]


def test_interrupt_raises_inside_process(sim):
    log = []

    def sleeper():
        try:
            yield Timeout(100)
        except Interrupt as i:
            log.append((sim.now, i.cause))

    proc = sim.spawn(sleeper())
    sim.schedule(5.0, proc.interrupt, "wake up")
    sim.run()
    assert log == [(5.0, "wake up")]


def test_interrupt_cancels_pending_timeout(sim):
    log = []

    def sleeper():
        try:
            yield Timeout(100)
            log.append("timeout fired")
        except Interrupt:
            log.append("interrupted")

    proc = sim.spawn(sleeper())
    sim.schedule(1.0, proc.interrupt)
    sim.run()
    assert log == ["interrupted"]
    assert sim.now < 100


def test_interrupt_dead_process_is_noop(sim):
    def quick():
        yield Timeout(1)

    proc = sim.spawn(quick())
    sim.run()
    proc.interrupt()  # must not raise
    sim.run()


def test_kill_terminates_and_fails_waiters(sim):
    caught = []

    def sleeper():
        yield Timeout(100)

    def parent(proc):
        try:
            yield proc
        except ProcessKilled:
            caught.append(sim.now)

    victim = sim.spawn(sleeper())
    sim.spawn(parent(victim))
    sim.schedule(2.0, victim.kill)
    sim.run()
    assert caught == [2.0]
    assert not victim.alive


def test_interrupted_event_wait_detaches_from_event(sim):
    ev = sim.event()
    log = []

    def waiter():
        try:
            yield ev
            log.append("event")
        except Interrupt:
            log.append("interrupted")
            yield Timeout(10)
            log.append("resumed")

    proc = sim.spawn(waiter())
    sim.schedule(1.0, proc.interrupt)
    sim.schedule(2.0, ev.succeed)  # must NOT wake the process a second time
    sim.run()
    assert log == ["interrupted", "resumed"]


def test_all_of_collects_results_in_order(sim):
    got = []

    def child(delay, value):
        yield Timeout(delay)
        return value

    def parent():
        results = yield AllOf(
            [sim.spawn(child(3, "a")), sim.spawn(child(1, "b")), Timeout(2, "t")]
        )
        got.append((sim.now, results))

    sim.spawn(parent())
    sim.run()
    assert got == [(3.0, ["a", "b", "t"])]


def test_all_of_empty_resumes_immediately(sim):
    got = []

    def parent():
        results = yield AllOf([])
        got.append((sim.now, results))

    sim.spawn(parent())
    sim.run()
    assert got == [(0.0, [])]


def test_any_of_returns_winner_index_and_value(sim):
    got = []

    def child(delay, value):
        yield Timeout(delay)
        return value

    def parent():
        winner = yield AnyOf([sim.spawn(child(5, "slow")), sim.spawn(child(1, "fast"))])
        got.append((sim.now, winner))

    sim.spawn(parent())
    sim.run()
    assert got == [(1.0, (1, "fast"))]


def test_any_of_requires_nonempty():
    with pytest.raises(ValueError):
        AnyOf([])


def test_yielding_garbage_errors_the_process(sim):
    def bad():
        yield "not a waitable"

    proc = sim.spawn(bad())
    sim.run()
    with pytest.raises(TypeError):
        _ = proc.result


def test_nested_process_tree(sim):
    order = []

    def leaf(name, d):
        yield Timeout(d)
        order.append(name)
        return name

    def mid():
        a = yield sim.spawn(leaf("a", 1))
        b = yield sim.spawn(leaf("b", 1))
        return a + b

    def root():
        value = yield sim.spawn(mid())
        order.append(value)

    sim.spawn(root())
    sim.run()
    assert order == ["a", "b", "ab"]
    assert sim.now == 2.0


def test_many_processes_deterministic_order(sim):
    order = []

    def proc(i):
        yield Timeout(1.0)
        order.append(i)

    for i in range(50):
        sim.spawn(proc(i))
    sim.run()
    assert order == list(range(50))
