"""Cancel/peek/step/run interleavings against the compacting heap.

The kernel keeps cancelled entries in the heap (lazy deletion) and
compacts when more than half the queue is dead.  These regressions pin
the contract the rest of the substrate relies on: a cancelled callback
never fires — regardless of how cancels interleave with ``peek``,
``step``, ``run(until)`` slices, compactions, or re-cancels of entries
that already ran — and the dead-entry accounting never drifts.
"""

from repro.simkernel import Simulator
from repro.simkernel.kernel import _COMPACT_FLOOR


def test_cancel_peek_step_interleaving_never_fires_cancelled():
    sim = Simulator()
    fired = []
    entries = [
        sim.schedule(float(t), fired.append, t) for t in range(200)
    ]
    cancelled = set()
    # cancel a moving window just ahead of the next event, peeking
    # between steps so the dead-head drop path runs constantly
    while True:
        head = sim.peek()
        if head is None:
            assert not sim.step()
            break
        assert head >= sim.now
        for ahead in (int(head) + 1, int(head) + 3):
            if ahead < 200 and ahead % 3 == 0 and ahead not in cancelled:
                sim.cancel(entries[ahead])
                cancelled.add(ahead)
        assert sim.step()
    assert cancelled
    assert not cancelled.intersection(fired)
    assert fired == [t for t in range(200) if t not in cancelled]
    assert sim.dead_entries == 0  # everything fired or was popped dead


def test_cancel_then_run_slices_and_late_cancels():
    sim = Simulator()
    fired = []
    entries = [sim.schedule(float(t), fired.append, t) for t in range(100)]
    for t in range(0, 100, 2):
        sim.cancel(entries[t])
    # run in uneven slices; cancel more (including already-fired and
    # already-cancelled entries) between slices
    for until in (10.5, 11.0, 37.2, 80.0, 200.0):
        sim.run(until=until)
        for entry in entries[:11]:
            sim.cancel(entry)  # no-ops: fired (t <= 10) or already dead
    assert fired == [t for t in range(100) if t % 2 == 1]
    assert sim.now == 200.0
    assert sim.dead_entries == 0


def test_mass_cancel_triggers_compaction_and_preserves_order():
    sim = Simulator()
    fired = []
    keep = [sim.schedule(1000.0 + t, fired.append, t) for t in range(10)]
    bulk = [sim.schedule(float(t), fired.append, -t) for t in range(500)]
    for entry in bulk:
        sim.cancel(entry)
    # more than half the queue is dead and above the floor -> compacted
    assert sim.compactions >= 1
    assert sim.dead_entries <= _COMPACT_FLOOR
    sim.run()
    assert fired == list(range(10))
    assert [e.alive for e in keep] == [False] * 10  # fired entries are dead
    assert sim.dead_entries == 0


def test_cancel_of_fired_entry_does_not_skew_dead_count():
    sim = Simulator()
    entry = sim.schedule(1.0, lambda: None)
    sim.run()
    before = sim.dead_entries
    for _ in range(5):
        sim.cancel(entry)  # already executed: must stay a no-op
    assert sim.dead_entries == before == 0
