"""Unit tests for the simulator clock and event queue."""

import pytest

from repro.simkernel import Simulator
from repro.simkernel.kernel import SimulationError


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_schedule_runs_callback_at_delay():
    sim = Simulator()
    hits = []
    sim.schedule(5.0, lambda: hits.append(sim.now))
    sim.run()
    assert hits == [5.0]
    assert sim.now == 5.0


def test_schedule_at_absolute_time():
    sim = Simulator()
    hits = []
    sim.schedule_at(7.5, hits.append, "x")
    sim.run()
    assert hits == ["x"]
    assert sim.now == 7.5


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []
    for i in range(10):
        sim.schedule(1.0, order.append, i)
    sim.run()
    assert order == list(range(10))


def test_events_fire_in_time_order_regardless_of_schedule_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, order.append, "c")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(2.0, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_run_until_stops_clock_exactly_at_until():
    sim = Simulator()
    hits = []
    sim.schedule(10.0, hits.append, "late")
    sim.run(until=4.0)
    assert sim.now == 4.0
    assert hits == []
    sim.run(until=20.0)
    assert hits == ["late"]
    assert sim.now == 20.0


def test_run_until_past_raises():
    sim = Simulator()
    sim.run(until=5.0)
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_run_until_boundary_event_fires():
    sim = Simulator()
    hits = []
    sim.schedule(4.0, hits.append, "edge")
    sim.run(until=4.0)
    assert hits == ["edge"]


def test_cancel_revokes_callback():
    sim = Simulator()
    hits = []
    entry = sim.schedule(1.0, hits.append, "never")
    sim.cancel(entry)
    sim.run()
    assert hits == []


def test_step_returns_false_on_empty_queue():
    assert Simulator().step() is False


def test_peek_reports_next_live_event_time():
    sim = Simulator()
    assert sim.peek() is None
    e1 = sim.schedule(2.0, lambda: None)
    sim.schedule(5.0, lambda: None)
    assert sim.peek() == 2.0
    sim.cancel(e1)
    assert sim.peek() == 5.0


def test_callbacks_can_schedule_more_work():
    sim = Simulator()
    hits = []

    def chain(n):
        hits.append((sim.now, n))
        if n > 0:
            sim.schedule(1.0, chain, n - 1)

    sim.schedule(0.0, chain, 3)
    sim.run()
    assert hits == [(0.0, 3), (1.0, 2), (2.0, 1), (3.0, 0)]


def test_events_executed_counter():
    sim = Simulator()
    for _ in range(4):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_executed == 4


def test_timeout_event_helper():
    sim = Simulator()
    ev = sim.timeout(3.0)
    assert not ev.triggered
    sim.run()
    assert ev.triggered and ev.ok
