"""Edge cases for event combinators and process teardown."""

import pytest

from repro.simkernel import (
    AllOf,
    AnyOf,
    Event,
    ProcessKilled,
    Simulator,
    Timeout,
)


@pytest.fixture()
def sim():
    return Simulator()


def test_all_of_fails_fast_on_child_failure(sim):
    caught = []

    def bad():
        yield Timeout(1)
        raise ValueError("child broke")

    def slow():
        yield Timeout(100)
        return "slow"

    def parent():
        try:
            yield AllOf([sim.spawn(bad()), sim.spawn(slow())])
        except ValueError as e:
            caught.append((sim.now, str(e)))

    sim.spawn(parent())
    sim.run()
    assert caught == [(1.0, "child broke")]  # did not wait for `slow`


def test_any_of_fails_if_loser_errors_first(sim):
    caught = []

    def bad():
        yield Timeout(1)
        raise RuntimeError("boom")

    def parent():
        try:
            yield AnyOf([sim.spawn(bad()), Timeout(50)])
        except RuntimeError:
            caught.append(sim.now)

    sim.spawn(parent())
    sim.run()
    assert caught == [1.0]


def test_any_of_winner_after_other_completes_is_ignored(sim):
    results = []

    def child(d, v):
        yield Timeout(d)
        return v

    def parent():
        winner = yield AnyOf([sim.spawn(child(1, "a")), sim.spawn(child(2, "b"))])
        results.append(winner)
        yield Timeout(10)  # let the loser finish too

    sim.spawn(parent())
    sim.run()
    assert results == [(0, "a")]


def test_event_callback_added_after_trigger_fires(sim):
    ev = sim.event()
    ev.succeed("late")
    got = []
    ev.add_callback(lambda e: got.append(e.value))
    sim.run()
    assert got == ["late"]


def test_kill_idempotent(sim):
    def sleeper():
        yield Timeout(100)

    proc = sim.spawn(sleeper())
    sim.run(until=1.0)
    proc.kill()
    proc.kill()  # no error
    sim.run()
    with pytest.raises(ProcessKilled):
        _ = proc.result


def test_killed_process_pending_timeout_cancelled(sim):
    def sleeper():
        yield Timeout(100)

    proc = sim.spawn(sleeper())
    sim.run(until=1.0)
    proc.kill()
    # the pending wakeup at t=100 was disarmed: queue drains immediately
    sim.run()
    assert sim.now < 100


def test_timeout_carries_value(sim):
    got = []

    def proc():
        value = yield Timeout(5, value="payload")
        got.append(value)

    sim.spawn(proc())
    sim.run()
    assert got == ["payload"]


def test_nested_all_of_any_of(sim):
    def child(d, v):
        yield Timeout(d)
        return v

    def parent():
        results = yield AllOf([
            AnyOf([sim.spawn(child(5, "x")), sim.spawn(child(1, "y"))]),
            Timeout(3, "t"),
        ])
        return results

    proc = sim.spawn(parent())
    sim.run()
    assert proc.result == [(1, "y"), "t"]
    assert sim.now == 5.0  # losers still ran to completion
