"""Unit tests for Resource and Store primitives."""

import pytest

from repro.simkernel import Resource, Simulator, Store, Timeout


@pytest.fixture()
def sim():
    return Simulator()


def test_resource_grants_up_to_capacity(sim):
    res = Resource(sim, capacity=2)
    g1, g2, g3 = res.request(), res.request(), res.request()
    sim.run()
    assert g1.triggered and g2.triggered
    assert not g3.triggered
    assert res.in_use == 2
    assert res.available == 0
    assert res.queue_length == 1


def test_resource_release_wakes_fifo(sim):
    res = Resource(sim, capacity=1)
    order = []

    def user(name, hold):
        grant = res.request()
        yield grant
        order.append(("start", name, sim.now))
        yield Timeout(hold)
        res.release()
        order.append(("end", name, sim.now))

    sim.spawn(user("a", 2))
    sim.spawn(user("b", 2))
    sim.spawn(user("c", 2))
    sim.run()
    starts = [(n, t) for kind, n, t in order if kind == "start"]
    assert starts == [("a", 0.0), ("b", 2.0), ("c", 4.0)]


def test_resource_release_without_grant_raises(sim):
    res = Resource(sim, capacity=1)
    with pytest.raises(RuntimeError):
        res.release()


def test_resource_capacity_validation(sim):
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_store_put_then_get(sim):
    store = Store(sim)
    store.put("x")
    ev = store.get()
    sim.run()
    assert ev.value == "x"
    assert len(store) == 0


def test_store_get_blocks_until_put(sim):
    store = Store(sim)
    got = []

    def getter():
        item = yield store.get()
        got.append((sim.now, item))

    sim.spawn(getter())
    sim.schedule(4.0, store.put, "late")
    sim.run()
    assert got == [(4.0, "late")]


def test_store_fifo_ordering(sim):
    store = Store(sim)
    for i in range(3):
        store.put(i)
    values = []

    def getter():
        for _ in range(3):
            values.append((yield store.get()))

    sim.spawn(getter())
    sim.run()
    assert values == [0, 1, 2]


def test_store_try_get(sim):
    store = Store(sim)
    assert store.try_get() is None
    store.put(7)
    assert store.try_get() == 7
    assert store.try_get() is None


def test_store_items_snapshot(sim):
    store = Store(sim)
    store.put("a")
    store.put("b")
    assert store.items == ["a", "b"]
    # snapshot is a copy
    store.items.append("c")
    assert len(store) == 2
