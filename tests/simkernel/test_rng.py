"""Unit tests for deterministic named RNG streams."""

import numpy as np
import pytest

from repro.simkernel import RngStreams


def test_same_seed_same_stream_reproduces():
    a = RngStreams(seed=123).stream("x").random(10)
    b = RngStreams(seed=123).stream("x").random(10)
    assert np.array_equal(a, b)


def test_different_names_independent():
    rng = RngStreams(seed=123)
    a = rng.stream("a").random(10)
    b = rng.stream("b").random(10)
    assert not np.array_equal(a, b)


def test_stream_is_cached():
    rng = RngStreams(seed=1)
    assert rng.stream("s") is rng.stream("s")


def test_new_stream_does_not_perturb_existing():
    rng1 = RngStreams(seed=9)
    _ = rng1.stream("a").random(5)
    first = rng1.stream("a").random()

    rng2 = RngStreams(seed=9)
    _ = rng2.stream("a").random(5)
    _ = rng2.stream("zzz").random(100)  # interleave a new consumer
    second = rng2.stream("a").random()
    assert first == second


def test_spawn_children_independent_and_reproducible():
    c1 = RngStreams(seed=5).spawn("child").stream("s").random(4)
    c2 = RngStreams(seed=5).spawn("child").stream("s").random(4)
    parent = RngStreams(seed=5).stream("s").random(4)
    assert np.array_equal(c1, c2)
    assert not np.array_equal(c1, parent)


def test_exponential_mean_validation():
    with pytest.raises(ValueError):
        RngStreams(0).exponential("x", 0)


def test_exponential_positive():
    rng = RngStreams(0)
    draws = [rng.exponential("e", 10.0) for _ in range(100)]
    assert all(d > 0 for d in draws)
    assert 2.0 < np.mean(draws) < 40.0


def test_normal_clipped_respects_bounds():
    rng = RngStreams(0)
    draws = [rng.normal_clipped("n", 0.0, 100.0, -1.0, 1.0) for _ in range(200)]
    assert all(-1.0 <= d <= 1.0 for d in draws)


def test_lognormal_mean_is_linear_space():
    rng = RngStreams(7)
    draws = np.array([rng.lognormal("ln", 100.0, 0.5) for _ in range(5000)])
    assert abs(draws.mean() - 100.0) / 100.0 < 0.1


def test_lognormal_validation():
    with pytest.raises(ValueError):
        RngStreams(0).lognormal("x", -1.0, 0.5)


def test_choice_with_weights():
    rng = RngStreams(3)
    picks = [rng.choice("c", ["a", "b"], p=[0.0, 1.0]) for _ in range(20)]
    assert picks == ["b"] * 20


def test_bernoulli_bounds():
    rng = RngStreams(0)
    with pytest.raises(ValueError):
        rng.bernoulli("b", 1.5)
    assert rng.bernoulli("b", 1.0) is True
    assert rng.bernoulli("b", 0.0) is False


def test_integers_range():
    rng = RngStreams(0)
    draws = [rng.integers("i", 2, 5) for _ in range(100)]
    assert set(draws) <= {2, 3, 4}


def test_shuffle_is_permutation_copy():
    rng = RngStreams(0)
    items = [1, 2, 3, 4, 5]
    out = rng.shuffle("sh", items)
    assert sorted(out) == items
    assert items == [1, 2, 3, 4, 5]
