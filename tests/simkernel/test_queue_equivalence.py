"""Hypothesis proof that the calendar queue is the heap, observably.

``CalendarQueue`` exists purely for speed: the kernel's correctness
story is that it maintains the exact ``(time, seq)`` total order and the
exact dead-entry accounting of the reference ``HeapEventQueue``.  These
properties drive both queues through identical random programs —
pushes (with deliberate time ties), cancels, pops, peeks, bounded and
unbounded drains — and require the *entire* observation log to match:
every fired ``(time, seq)``, every peek, and the ``len/dead/compactions``
counters after every step.

Tiny ``min_bucket`` values force the calendar machinery (refill cuts,
near-overflow spills, lazy far-sorts) to run constantly, so the
tie-safety of the bucket boundaries is exercised far harder than the
default configuration ever would in a real run.

``tests/experiments/test_queue_trace_equivalence.py`` closes the same
loop at whole-experiment granularity (byte-identical traces).
"""

from hypothesis import given, settings, strategies as st

from repro.simkernel import Simulator, Timeout
from repro.simkernel.calqueue import CalendarQueue
from repro.simkernel.kernel import HeapEventQueue, _Entry

# Small delta palette with repeats at 0.0 so time ties (the dangerous
# case for bucket boundaries) occur constantly.
_DELTAS = st.sampled_from([0.0, 0.0, 0.25, 1.0, 3.0, 10.0])

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("push"), _DELTAS),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=10**6)),
        st.tuples(st.just("pop"), st.none()),
        st.tuples(st.just("peek"), st.none()),
        st.tuples(st.just("drain_until"), _DELTAS),
        st.tuples(st.just("drain_all"), st.none()),
    ),
    max_size=80,
)


def _run_program(queue, ops):
    """Interpret *ops* against *queue*; return the full observation log.

    Mirrors the kernel's contract: pushes never go below the time of the
    last fired entry (``Simulator.schedule_at`` enforces ``time >= now``),
    and a fired entry is marked dead (``Simulator._fire`` does this) so a
    late cancel of its handle stays a no-op.
    """
    entries = []
    log = []
    now = 0.0
    seq = 0

    def fire(entry):
        nonlocal now
        now = entry.time
        entry.alive = False
        log.append(("fire", entry.time, entry.seq))

    for kind, arg in ops:
        if kind == "push":
            entry = _Entry(now + arg, seq, int, ())
            seq += 1
            entries.append(entry)
            queue.push(entry)
        elif kind == "cancel":
            if entries:
                queue.cancel(entries[arg % len(entries)])
        elif kind == "pop":
            entry = queue.pop()
            if entry is None:
                log.append(("pop", None))
            else:
                fire(entry)
        elif kind == "peek":
            entry = queue.peek()
            log.append(
                ("peek", None if entry is None else (entry.time, entry.seq))
            )
        elif kind == "drain_until":
            queue.drain(fire, until=now + arg)
        else:  # drain_all
            queue.drain(fire)
        log.append(("state", len(queue), queue.dead, queue.compactions))

    queue.drain(fire)  # flush: the tail order must match too
    log.append(("final", len(queue), queue.dead, queue.compactions))
    return log


@settings(max_examples=200, deadline=None)
@given(ops=_OPS, min_bucket=st.sampled_from([1, 2, 3, 8]))
def test_calendar_matches_heap_for_every_observation(ops, min_bucket):
    heap_log = _run_program(HeapEventQueue(), ops)
    cal_log = _run_program(CalendarQueue(min_bucket=min_bucket), ops)
    assert cal_log == heap_log


@settings(max_examples=100, deadline=None)
@given(
    ops=_OPS,
    min_bucket=st.sampled_from([1, 2, 4]),
)
def test_calendar_drains_empty_and_exercises_resizes(ops, min_bucket):
    queue = CalendarQueue(min_bucket=min_bucket)
    _run_program(queue, ops)
    # after the final flush nothing may linger in either tier
    assert len(queue) == 0
    assert queue.pop() is None
    pushes = sum(1 for kind, _ in ops if kind == "push")
    if pushes > min_bucket:
        # tiny buckets must actually force the calendar machinery to run;
        # a zero here would mean the property never left the near tier
        assert queue.resizes > 0


# -- kernel-level: whole Simulator runs, sliced by run(until=) ---------------

_PROGRAM = st.lists(
    st.tuples(
        _DELTAS,                                   # schedule offset
        st.booleans(),                             # cancel it mid-run?
        st.integers(min_value=0, max_value=3),     # respawns inside callback
    ),
    min_size=1,
    max_size=40,
)


def _run_sim(queue_kind, program, slices):
    sim = Simulator(queue=queue_kind)
    fired = []
    handles = []

    def hit(tag, respawn):
        fired.append((sim.now, tag))
        for i in range(respawn):
            handles.append(
                sim.schedule(0.0 if i == 0 else float(i), hit, f"{tag}.{i}", 0)
            )

    for index, (delay, cancel, respawn) in enumerate(program):
        handles.append(sim.schedule(delay, hit, f"job{index}", respawn))
    for index, (_, cancel, _) in enumerate(program):
        if cancel:
            sim.cancel(handles[index])

    def churn():
        while True:
            yield Timeout(2.0)
            if handles:
                sim.cancel(handles[len(fired) % len(handles)])

    sim.spawn(churn(), name="churn")
    clock = 0.0
    for step in slices:
        clock += step
        sim.run(until=clock)
    return fired, sim.now, sim.events_executed


@settings(max_examples=60, deadline=None)
@given(
    program=_PROGRAM,
    slices=st.lists(_DELTAS, min_size=1, max_size=6),
)
def test_simulator_runs_identically_on_both_queues(program, slices):
    heap = _run_sim("heap", program, slices)
    calendar = _run_sim("calendar", program, slices)
    assert calendar == heap
