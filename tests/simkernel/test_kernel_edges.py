"""Kernel edge cases, pinned on both event-queue implementations.

Each of these is a boundary the equivalence properties can hit only by
luck; here they are deterministic and named.  Everything is parametrized
over ``heap`` and ``calendar`` so the seam cannot quietly diverge.
"""

import pytest

from repro.simkernel import Simulator
from repro.simkernel.calqueue import CalendarQueue

QUEUES = ("heap", "calendar")


@pytest.mark.parametrize("queue", QUEUES)
def test_run_until_on_empty_queue_leaves_clock_exactly_at_until(queue):
    sim = Simulator(queue=queue)
    sim.run(until=123.456)
    assert sim.now == 123.456
    # and again: back-to-back bounded runs behave like a wall clock
    sim.run(until=200.0)
    assert sim.now == 200.0
    assert sim.events_executed == 0


@pytest.mark.parametrize("queue", QUEUES)
def test_run_until_queue_drained_early_still_advances_clock(queue):
    sim = Simulator(queue=queue)
    hits = []
    sim.schedule(1.0, hits.append, 1)
    sim.run(until=50.0)
    assert hits == [1]
    assert sim.now == 50.0


@pytest.mark.parametrize("queue", QUEUES)
def test_cancel_of_already_fired_entry_is_a_noop(queue):
    sim = Simulator(queue=queue)
    hits = []
    handle = sim.schedule(1.0, hits.append, 1)
    sim.schedule(2.0, hits.append, 2)
    sim.run(until=1.5)
    assert hits == [1]
    # the walltime-guard pattern: cancel a handle whose event already ran
    sim.cancel(handle)
    sim.cancel(handle)  # twice, for good measure
    assert sim.dead_entries == 0  # fired entries never enter dead accounting
    sim.run()
    assert hits == [1, 2]


@pytest.mark.parametrize("queue", QUEUES)
def test_peek_across_dead_heads_returns_first_live_time(queue):
    sim = Simulator(queue=queue)
    doomed = [sim.schedule(float(t), int) for t in (1, 2, 3)]
    sim.schedule(7.0, int)
    for handle in doomed:
        sim.cancel(handle)
    assert sim.dead_entries == 3
    assert sim.peek() == 7.0
    # peek sheds the dead heads it walked past
    assert sim.dead_entries == 0
    assert sim.peek() == 7.0  # idempotent


@pytest.mark.parametrize("queue", QUEUES)
def test_peek_on_fully_cancelled_queue_is_none(queue):
    sim = Simulator(queue=queue)
    handles = [sim.schedule(float(t), int) for t in (1, 2)]
    for handle in handles:
        sim.cancel(handle)
    assert sim.peek() is None
    assert len(sim._queue) == 0


def test_same_time_ordering_survives_compaction_and_bucket_resizes():
    """FIFO ties must hold across refill cuts, spills *and* a compaction.

    A tiny ``min_bucket`` forces bucket boundaries inside the tie groups,
    and cancelling enough entries mid-run triggers the compaction path;
    the surviving same-time events must still fire in schedule order.
    """
    sim = Simulator(queue=CalendarQueue(min_bucket=2))
    fired = []
    handles = []
    # 40 groups of 8 events sharing one timestamp each
    for group in range(40):
        for member in range(8):
            handles.append(
                sim.schedule(float(group), fired.append, (group, member))
            )
    # cancel two of every three -> 213 dead of 320 queued, which clears
    # both compaction gates (dead > _COMPACT_FLOOR=64, dead*2 > len)
    for index, handle in enumerate(handles):
        if index % 3 != 0:
            sim.cancel(handle)
    assert sim.compactions >= 1
    sim.run()
    expected = [
        (group, member)
        for group in range(40)
        for member in range(8)
        if (group * 8 + member) % 3 == 0
    ]
    assert fired == expected
    assert sim._queue.resizes > 0  # the boundaries were actually exercised


@pytest.mark.parametrize("queue", QUEUES)
def test_push_below_horizon_during_drain_fires_in_order(queue):
    """A callback scheduling at the current time runs before later events."""
    if queue == "calendar":
        sim = Simulator(queue=CalendarQueue(min_bucket=2))
    else:
        sim = Simulator(queue=queue)
    fired = []

    def first():
        fired.append("first")
        sim.schedule(0.0, fired.append, "nested-now")
        sim.schedule(1.0, fired.append, "nested-later")

    sim.schedule(5.0, first)
    for t in range(6, 30):  # far tail so the calendar has a real horizon
        sim.schedule(float(t), fired.append, t)
    sim.run(until=6.5)
    # nested-now shares t=5.0 with nothing and runs immediately; the
    # pre-existing t=6.0 event out-sequences nested-later at the same time
    assert fired[:4] == ["first", "nested-now", 6, "nested-later"]
