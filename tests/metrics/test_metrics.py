"""Metrics: intervals, utilisation math, wait stats, tables, effort."""

import numpy as np
import pytest

from repro.metrics import (
    AdminEffortLedger,
    JobRecord,
    OsInterval,
    Table,
    WaitStats,
    usable_core_seconds,
    wait_stats,
)
from repro.metrics.utilization import (
    busy_core_seconds,
    cluster_utilization,
    utilization_timeline,
)
from repro.metrics.waittime import makespan, turnaround_stats


def record(name="j", cores=4, submit=0.0, start=None, end=None, scheduler="pbs"):
    return JobRecord(
        name=name, scheduler=scheduler, cores=cores, submit_time=submit,
        start_time=start, end_time=end,
    )


def test_os_interval_duration_clipping():
    interval = OsInterval("n", "linux", start=100.0, end=300.0)
    assert interval.duration(horizon=1000.0) == 200.0
    assert interval.duration(horizon=250.0) == 150.0
    open_interval = OsInterval("n", "linux", start=100.0)
    assert open_interval.duration(horizon=400.0) == 300.0


def test_usable_core_seconds_filters_os():
    intervals = [
        OsInterval("a", "linux", 0.0, 100.0),
        OsInterval("b", "windows", 0.0, 50.0),
    ]
    assert usable_core_seconds(intervals, 4, 100.0) == 600.0
    assert usable_core_seconds(intervals, 4, 100.0, os_name="linux") == 400.0
    assert usable_core_seconds([], 4, 100.0) == 0.0


def test_busy_core_seconds():
    jobs = [
        record(start=0.0, end=100.0, cores=4),
        record(start=50.0, end=150.0, cores=2),
        record(start=None),  # never started
    ]
    assert busy_core_seconds(jobs, horizon=200.0) == 400.0 + 200.0
    # clipped at the horizon
    assert busy_core_seconds(jobs, horizon=100.0) == 400.0 + 100.0
    assert busy_core_seconds([], 100.0) == 0.0


def test_cluster_utilization():
    jobs = [record(start=0.0, end=50.0, cores=8)]
    assert cluster_utilization(jobs, total_cores=8, horizon=100.0) == 0.5
    assert cluster_utilization(jobs, total_cores=0, horizon=100.0) == 0.0


def test_utilization_timeline_bins():
    jobs = [record(start=60.0, end=180.0, cores=4)]
    timeline = utilization_timeline(jobs, horizon=240.0, bin_s=60.0)
    assert timeline.shape == (4,)
    assert np.allclose(timeline, [0.0, 4.0, 4.0, 0.0])


def test_utilization_timeline_open_job_runs_to_horizon():
    jobs = [record(start=30.0, end=None, cores=2)]
    timeline = utilization_timeline(jobs, horizon=60.0, bin_s=60.0)
    assert np.allclose(timeline, [1.0])


def test_wait_stats():
    jobs = [
        record(submit=0.0, start=10.0),
        record(submit=0.0, start=30.0),
        record(submit=0.0, start=None),  # excluded
    ]
    stats = wait_stats(jobs)
    assert stats.count == 2
    assert stats.mean == 20.0
    assert stats.median == 20.0
    assert stats.maximum == 30.0


def test_wait_stats_empty():
    assert wait_stats([]) == WaitStats.empty()


def test_turnaround_and_makespan():
    jobs = [
        record(submit=0.0, start=5.0, end=50.0),
        record(submit=10.0, start=20.0, end=90.0),
    ]
    stats = turnaround_stats(jobs)
    assert stats.count == 2
    assert stats.mean == (50.0 + 80.0) / 2
    assert makespan(jobs) == 90.0
    assert makespan([record()]) is None


def test_table_rendering():
    table = Table(["a", "long-header"], title="T")
    table.add_row(["x", 1.2345])
    table.add_row(["yy", 123.456])
    text = table.render()
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "long-header" in lines[1]
    assert "1.23" in text and "123" in text


def test_table_row_width_mismatch():
    table = Table(["a", "b"])
    with pytest.raises(ValueError):
        table.add_row([1])


def test_effort_ledger():
    ledger = AdminEffortLedger()
    ledger.record("edit-script", "x")
    ledger.record("edit-script", "y", node="enode01")
    ledger.record("fix-mbr", "z")
    assert ledger.count() == 3
    assert ledger.count("edit-script") == 2
    assert ledger.by_category() == {"edit-script": 2, "fix-mbr": 1}
    other = AdminEffortLedger()
    other.record("reinstall-other-os", "w")
    ledger.merge(other)
    assert ledger.count() == 4
