"""ClusterRecorder integration: intervals and job records from live runs."""

import pytest

from repro.core import MiddlewareConfig, build_hybrid_cluster
from repro.metrics.utilization import usable_core_seconds
from repro.simkernel import HOUR, MINUTE


@pytest.fixture(scope="module")
def run():
    hybrid = build_hybrid_cluster(
        num_nodes=4, seed=21, version=2,
        config=MiddlewareConfig(version=2, check_cycle_s=5 * MINUTE),
    )
    hybrid.deploy()
    hybrid.wait_for_nodes()
    hybrid.submit_linux_job("md", runtime_s=20 * MINUTE)
    win = hybrid.submit_windows_job("render", cores=4, runtime_s=15 * MINUTE)
    hybrid.sim.run(until=hybrid.sim.now + 2 * HOUR)
    hybrid.finalize()
    return hybrid


def test_intervals_cover_every_node(run):
    nodes = {iv.node for iv in run.recorder.intervals}
    assert nodes == {n.name for n in run.cluster.compute_nodes}


def test_switched_node_has_two_intervals(run):
    switched = [
        n.name for n in run.cluster.compute_nodes if len(n.boot_records) > 1
    ]
    assert len(switched) == 1
    intervals = [
        iv for iv in run.recorder.intervals if iv.node == switched[0]
    ]
    assert [iv.os_name for iv in intervals] == ["linux", "windows"]
    first, second = intervals
    assert first.end is not None
    # the reboot gap between the intervals is the switch cost
    assert second.start - first.end > 2 * MINUTE


def test_finalize_closes_open_intervals(run):
    assert all(iv.end is not None for iv in run.recorder.intervals)


def test_switch_count_matches_os_changes(run):
    assert run.recorder.switch_count == 1


def test_job_records_complete(run):
    records = {r.name: r for r in run.recorder.workload_jobs()}
    assert records["md"].scheduler == "pbs"
    assert records["md"].cores == 4
    assert records["md"].completed
    assert records["render"].scheduler == "winhpc"
    assert records["render"].completed
    assert records["render"].wait_s > 0  # had to wait for the switch


def test_switch_jobs_excluded_from_workload_selection(run):
    names = [r.name for r in run.recorder.workload_jobs()]
    assert "release_1_node" not in names
    all_names = [r.name for r in run.recorder.jobs]
    assert "release_1_node" in all_names


def test_jobs_for_scheduler_filter(run):
    assert {r.name for r in run.recorder.jobs_for("pbs")} == {"md"}
    assert {r.name for r in run.recorder.jobs_for("winhpc")} == {"render"}


def test_usable_core_seconds_split_by_os(run):
    horizon = run.sim.now
    linux_cs = usable_core_seconds(
        run.recorder.intervals, 4, horizon, os_name="linux"
    )
    windows_cs = usable_core_seconds(
        run.recorder.intervals, 4, horizon, os_name="windows"
    )
    assert linux_cs > windows_cs > 0
    total = usable_core_seconds(run.recorder.intervals, 4, horizon)
    assert abs(total - (linux_cs + windows_cs)) < 1e-6
    # reboot windows mean the cluster is never 100% available
    assert total < 4 * 4 * horizon
