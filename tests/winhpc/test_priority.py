"""HPC Pack priority-band queueing."""

import pytest

from repro.errors import SchedulerError
from repro.simkernel import Simulator
from repro.winhpc import WinHpcScheduler, WinJobSpec, WinJobState
from repro.winhpc.job import PRIORITY_HIGHEST, PRIORITY_LOWEST, PRIORITY_NORMAL


@pytest.fixture()
def scheduler():
    sim = Simulator()
    sched = WinHpcScheduler(sim)
    sched.add_node("enode01", cores=4)
    sched.node_online("enode01")
    return sched


def fill(scheduler):
    return scheduler.submit(WinJobSpec(name="fill", amount=4, runtime_s=100.0))


def test_higher_priority_overtakes_queue(scheduler):
    fill(scheduler)
    normal = scheduler.submit(WinJobSpec(name="n", amount=4, runtime_s=10.0))
    urgent = scheduler.submit(
        WinJobSpec(name="u", amount=4, runtime_s=10.0,
                   priority=PRIORITY_HIGHEST)
    )
    assert [j.name for j in scheduler.queued_jobs()] == ["u", "n"]
    scheduler.sim.run()
    assert urgent.start_time < normal.start_time


def test_fifo_within_same_priority(scheduler):
    fill(scheduler)
    first = scheduler.submit(WinJobSpec(name="a", amount=4, runtime_s=1.0))
    second = scheduler.submit(WinJobSpec(name="b", amount=4, runtime_s=1.0))
    assert [j.name for j in scheduler.queued_jobs()] == ["a", "b"]


def test_low_priority_goes_to_back(scheduler):
    fill(scheduler)
    normal = scheduler.submit(WinJobSpec(name="n", amount=4, runtime_s=1.0))
    low = scheduler.submit(
        WinJobSpec(name="l", amount=4, runtime_s=1.0, priority=PRIORITY_LOWEST)
    )
    later_normal = scheduler.submit(
        WinJobSpec(name="n2", amount=4, runtime_s=1.0)
    )
    assert [j.name for j in scheduler.queued_jobs()] == ["n", "n2", "l"]


def test_priority_validation(scheduler):
    with pytest.raises(SchedulerError, match="priority"):
        scheduler.submit(WinJobSpec(name="x", amount=1, priority=4001))
    with pytest.raises(SchedulerError, match="priority"):
        scheduler.submit(WinJobSpec(name="x", amount=1, priority=-1))


def test_default_priority_is_normal(scheduler):
    job = scheduler.submit(WinJobSpec(name="d", amount=1, runtime_s=1.0))
    assert job.priority == PRIORITY_NORMAL


def test_priority_still_respects_head_of_line_blocking(scheduler):
    fill(scheduler)
    big_urgent = scheduler.submit(
        WinJobSpec(name="big", amount=4, runtime_s=50.0,
                   priority=PRIORITY_HIGHEST)
    )
    small_normal = scheduler.submit(
        WinJobSpec(name="small", amount=1, runtime_s=5.0)
    )
    scheduler.sim.run(until=10.0)
    # urgent job heads the queue; the small job must not backfill past it
    assert big_urgent.state is WinJobState.QUEUED
    assert small_normal.state is WinJobState.QUEUED
