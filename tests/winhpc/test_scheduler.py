"""Windows HPC scheduler tests."""

import pytest

from repro.errors import SchedulerError
from repro.simkernel import Simulator
from repro.winhpc import (
    WinHpcScheduler,
    WinJobSpec,
    WinJobState,
    WinJobUnit,
    WinNodeState,
)


@pytest.fixture()
def sim():
    return Simulator()


@pytest.fixture()
def scheduler(sim):
    sched = WinHpcScheduler(sim)
    for i in range(1, 5):
        sched.add_node(f"enode{i:02d}", cores=4)
        sched.node_online(f"enode{i:02d}")
    return sched


def spec(name="job", unit=WinJobUnit.CORE, amount=4, runtime=100.0, **kw):
    return WinJobSpec(name=name, unit=unit, amount=amount, runtime_s=runtime, **kw)


def test_job_ids_increment(scheduler):
    j1 = scheduler.submit(spec())
    j2 = scheduler.submit(spec())
    assert (j1.job_id, j2.job_id) == (1, 2)


def test_core_job_runs_and_finishes(sim, scheduler):
    job = scheduler.submit(spec(amount=4, runtime=60.0))
    assert job.state is WinJobState.RUNNING
    sim.run()
    assert job.state is WinJobState.FINISHED
    assert job.end_time == 60.0
    assert job.wait_time_s == 0.0
    assert job.turnaround_s == 60.0


def test_core_jobs_pack_busiest_first(sim, scheduler):
    j1 = scheduler.submit(spec(amount=2, runtime=100.0))
    j2 = scheduler.submit(spec(amount=2, runtime=100.0))
    # second job fills the same node before opening a fresh one
    assert list(j1.allocation) == list(j2.allocation)


def test_core_job_spans_nodes_when_needed(scheduler):
    job = scheduler.submit(spec(amount=10, runtime=10.0))
    assert job.total_allocated_cores() == 10
    assert len(job.allocation) >= 3


def test_node_unit_job_needs_idle_machines(sim, scheduler):
    filler = scheduler.submit(spec(amount=1, runtime=100.0))  # one core busy
    node_job = scheduler.submit(
        spec(unit=WinJobUnit.NODE, amount=4, runtime=10.0)
    )
    assert node_job.state is WinJobState.QUEUED  # only 3 idle machines
    sim.run(until=101.0)
    assert node_job.state is WinJobState.RUNNING
    assert node_job.total_allocated_cores() == 16


def test_node_unit_allocates_highest_hostname_first(scheduler):
    job = scheduler.submit(spec(unit=WinJobUnit.NODE, amount=1, runtime=10.0))
    assert list(job.allocation) == ["enode04"]


def test_fifo_head_of_line_blocking(sim, scheduler):
    scheduler.submit(spec(amount=16, runtime=100.0))
    big = scheduler.submit(spec(amount=16, runtime=10.0))
    small = scheduler.submit(spec(amount=1, runtime=10.0))
    assert big.state is WinJobState.QUEUED
    assert small.state is WinJobState.QUEUED  # no backfill
    sim.run()
    assert small.state is WinJobState.FINISHED


def test_node_unreachable_cancels_jobs(sim, scheduler):
    job = scheduler.submit(spec(unit=WinJobUnit.NODE, amount=1, runtime=1000.0))
    host = next(iter(job.allocation))
    sim.run(until=5.0)
    scheduler.node_unreachable(host)
    sim.run(until=6.0)
    assert job.state is WinJobState.CANCELED
    assert scheduler.node(host).state is WinNodeState.UNREACHABLE


def test_node_online_triggers_scheduling(sim, scheduler):
    for host in list(scheduler.nodes):
        scheduler.node_unreachable(host)
    job = scheduler.submit(spec(amount=2, runtime=10.0))
    assert job.state is WinJobState.QUEUED
    scheduler.node_online("enode02")
    assert job.state is WinJobState.RUNNING


def test_cancel_queued_and_running(sim, scheduler):
    filler = scheduler.submit(spec(amount=16, runtime=100.0))
    queued = scheduler.submit(spec(amount=1, runtime=10.0))
    scheduler.cancel(queued.job_id)
    assert queued.state is WinJobState.CANCELED
    scheduler.cancel(filler.job_id)
    sim.run(until=1.0)
    assert filler.state is WinJobState.CANCELED
    assert scheduler.free_cores() == 16


def test_cancel_finished_rejected(sim, scheduler):
    job = scheduler.submit(spec(runtime=1.0))
    sim.run()
    with pytest.raises(SchedulerError):
        scheduler.cancel(job.job_id)


def test_oversized_requests_rejected(scheduler):
    with pytest.raises(SchedulerError):
        scheduler.submit(spec(amount=17))
    with pytest.raises(SchedulerError):
        scheduler.submit(spec(unit=WinJobUnit.NODE, amount=5))
    with pytest.raises(SchedulerError):
        scheduler.submit(spec(amount=0))


def test_duplicate_node_rejected(scheduler):
    with pytest.raises(SchedulerError):
        scheduler.add_node("enode01", cores=4)


def test_script_job_without_node_os_fails(sim, scheduler):
    job = scheduler.submit(
        WinJobSpec(name="switch", unit=WinJobUnit.NODE, amount=1,
                   script="shutdown /r /t 0\n")
    )
    sim.run()
    assert job.state is WinJobState.FAILED


def test_observers(sim, scheduler):
    events = []
    scheduler.observers.append(lambda ev, job: events.append((ev, job.name)))
    scheduler.submit(spec(name="w", runtime=5.0))
    sim.run()
    assert events == [("submitted", "w"), ("started", "w"), ("finished", "w")]
