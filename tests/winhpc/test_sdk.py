"""SDK facade tests."""

import pytest

from repro.errors import SchedulerError
from repro.simkernel import Simulator
from repro.winhpc import (
    HpcSchedulerConnection,
    WinHpcScheduler,
    WinJobState,
    WinJobUnit,
)
from repro.winhpc.templates import NodeTemplate


@pytest.fixture()
def sim():
    return Simulator()


@pytest.fixture()
def conn(sim):
    scheduler = WinHpcScheduler(sim)
    for i in range(1, 3):
        scheduler.add_node(f"enode{i:02d}", cores=4)
        scheduler.node_online(f"enode{i:02d}")
    connection = HpcSchedulerConnection()
    connection.connect(scheduler)
    return connection


def test_unconnected_calls_rejected():
    conn = HpcSchedulerConnection()
    assert not conn.connected
    with pytest.raises(SchedulerError):
        conn.get_node_list()


def test_create_and_submit_job(sim, conn):
    spec = conn.create_job("render", unit=WinJobUnit.CORE, amount=2, runtime_s=30.0)
    job = conn.submit_job(spec, owner="HPC\\render")
    assert job.owner == "HPC\\render"
    sim.run()
    assert job.state is WinJobState.FINISHED


def test_get_job_list_filters(sim, conn):
    running = conn.submit_job(conn.create_job("r", amount=8, runtime_s=100.0))
    queued = conn.submit_job(conn.create_job("q", amount=8, runtime_s=100.0))
    assert conn.get_job_list(WinJobState.RUNNING) == [running]
    assert conn.get_job_list(WinJobState.QUEUED) == [queued]
    assert len(conn.get_job_list()) == 2


def test_get_node_list_sorted(conn):
    names = [r.hostname for r in conn.get_node_list()]
    assert names == ["enode01", "enode02"]


def test_counters(sim, conn):
    conn.submit_job(conn.create_job("x", amount=3, runtime_s=50.0))
    counters = conn.get_counters()
    assert counters["total_cores"] == 8
    assert counters["idle_cores"] == 5
    assert counters["running_jobs"] == 1
    assert counters["queued_jobs"] == 0
    assert counters["online_nodes"] == 2


def test_cancel_via_sdk(sim, conn):
    job = conn.submit_job(conn.create_job("victim", amount=1, runtime_s=100.0))
    conn.cancel_job(job.job_id)
    sim.run(until=1.0)
    assert job.state is WinJobState.CANCELED


def test_node_templates():
    stock = NodeTemplate.stock()
    v1 = NodeTemplate.dualboot_v1()
    assert "clean" in stock.diskpart_script
    assert "size=150000" in v1.diskpart_script
    assert "size=" not in stock.diskpart_script
