"""WinHPC node-failure recovery: fence, requeue order, checkpoint, drain."""

from types import SimpleNamespace

import pytest

from repro.simkernel import Simulator
from repro.winhpc import WinHpcScheduler
from repro.winhpc.job import (
    PRIORITY_HIGHEST,
    WinJobSpec,
    WinJobState,
    WinJobUnit,
)
from repro.winhpc.nodestate import WinNodeState


@pytest.fixture()
def sim():
    return Simulator()


@pytest.fixture()
def scheduler(sim):
    sched = WinHpcScheduler(sim)
    for i in range(1, 4):
        sched.add_node(f"enode{i:02d}", cores=4)
        sched.node_online(f"enode{i:02d}")
    return sched


def core_spec(name="job", cores=4, runtime=100.0, **kw):
    return WinJobSpec(name=name, unit=WinJobUnit.CORE, amount=cores,
                      runtime_s=runtime, **kw)


def host_of(job):
    return next(iter(job.allocation))


def test_fence_requeues_and_job_completes_elsewhere(sim, scheduler):
    job = scheduler.submit(core_spec())
    victim = host_of(job)
    sim.run(until=30.0)
    out = scheduler.fence_node(victim)
    assert out == {"requeued": [job.job_id], "failed": []}
    assert job.state is WinJobState.RUNNING  # two other nodes are free
    assert host_of(job) != victim
    assert job.restarts == 1
    assert job.lost_work_s == 30.0
    assert scheduler.node(victim).state is WinNodeState.UNREACHABLE
    sim.run()
    assert job.state is WinJobState.FINISHED
    assert job.end_time == 130.0


def test_non_rerunnable_job_fails_terminally(sim, scheduler):
    """Satellite regression: switch jobs ride ``rerunnable=False`` — a
    fence must fail them, never replay them on another node."""
    job = scheduler.submit(core_spec(rerunnable=False))
    sim.run(until=10.0)
    out = scheduler.fence_node(host_of(job))
    assert out == {"requeued": [], "failed": [job.job_id]}
    assert job.state is WinJobState.FAILED
    assert job.restarts == 0
    assert scheduler.jobs_failed_on_fence == 1


def test_retry_budget_exhaustion(sim, scheduler):
    scheduler.max_job_restarts = 1
    job = scheduler.submit(core_spec())
    sim.run(until=10.0)
    assert scheduler.fence_node(host_of(job))["requeued"] == [job.job_id]
    sim.run(until=20.0)
    out = scheduler.fence_node(host_of(job))
    assert out["failed"] == [job.job_id]
    assert job.state is WinJobState.FAILED


def test_checkpoint_interval_credits_durable_work(sim, scheduler):
    scheduler.checkpoint_interval_s = 30.0
    job = scheduler.submit(core_spec())
    sim.run(until=70.0)
    scheduler.fence_node(host_of(job))
    assert job.checkpointed_s == 60.0
    assert job.lost_work_s == 10.0
    sim.run()
    assert job.state is WinJobState.FINISHED
    assert job.end_time == 110.0  # only the remaining 40s reran


def test_requeue_respects_priority_bands(sim, scheduler):
    """A requeued normal-priority job may not jump a highest-priority
    job that is already waiting."""
    # fill the cluster
    filler = [scheduler.submit(core_spec(name=f"fill{i}")) for i in range(3)]
    victim_like = filler[0]
    urgent = scheduler.submit(
        core_spec(name="urgent", priority=PRIORITY_HIGHEST)
    )
    assert urgent.state is WinJobState.QUEUED
    sim.run(until=10.0)
    scheduler.fence_node(host_of(victim_like))
    # both now wait (the fence removed a node, it freed no cores), but
    # the requeued normal-priority victim sits BEHIND the urgent job
    assert victim_like.state is WinJobState.QUEUED
    assert [j.name for j in scheduler.queued_jobs()] == ["urgent", "fill0"]
    sim.run()
    assert urgent.state is WinJobState.FINISHED
    assert victim_like.state is WinJobState.FINISHED


def test_fast_rejoin_recovers_stranded_jobs(sim, scheduler):
    job = scheduler.submit(core_spec())
    victim = host_of(job)
    sim.run(until=10.0)
    scheduler.node_crashed(victim)
    assert job.interrupted_at == 10.0
    sim.run(until=40.0)
    scheduler.node_online(victim)
    assert job.restarts == 1
    assert job.state is WinJobState.RUNNING
    assert job.lost_work_s == 10.0  # charged to the crash, not the rejoin
    sim.run()
    assert job.state is WinJobState.FINISHED


def test_cordon_drains_without_killing(sim, scheduler):
    job = scheduler.submit(core_spec())
    host = host_of(job)
    scheduler.cordon_node(host)
    assert scheduler.node(host).state is WinNodeState.DRAINING
    assert job.state is WinJobState.RUNNING
    # 3 nodes x 4 cores minus the draining one: a 12-core job cannot start
    big = scheduler.submit(core_spec(name="big", cores=12))
    assert big.state is WinJobState.QUEUED
    scheduler.uncordon_node(host)
    sim.run()
    assert job.state is WinJobState.FINISHED
    assert big.state is WinJobState.FINISHED


def test_job_on_silently_dead_node_parks_until_fenced(sim):
    scheduler = WinHpcScheduler(sim)
    scheduler.add_node("enode01", cores=4)
    scheduler.node_online("enode01", os_instance=SimpleNamespace(running=False))
    job = scheduler.submit(core_spec())
    assert job.state is WinJobState.RUNNING
    sim.run(until=1000.0)
    assert job.state is WinJobState.RUNNING  # parked, not completing
    out = scheduler.fence_node("enode01")
    assert out["requeued"] == [job.job_id]
    assert job.state is WinJobState.QUEUED
    sim.run()
    assert job.state is WinJobState.QUEUED
