"""Audit of the committed benchmark-report artifacts.

``benchmarks/reports/`` is a curated set of rendered experiment outputs;
every ``.txt`` there must have a live producer bench, and transient
timing baselines (``BENCH_*.json``) must never be committed.  This
guards against the failure mode where an experiment is removed or
renamed and its stale report keeps shipping — reviewers then cite
numbers nothing can regenerate.
"""

import json
import pathlib
import subprocess

import pytest

from repro.experiments import ALL_EXPERIMENTS

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"
REPORTS_DIR = BENCH_DIR / "reports"

#: report stem -> the bench module that regenerates it (via ``publish``)
PRODUCERS = {
    "e1": "bench_e1_switch_latency.py",
    "e2": "bench_e2_utilization.py",
    "e3": "bench_e3_bistable_speedup.py",
    "e4": "bench_e4_admin_effort.py",
    "e5": "bench_e5_control_cycle.py",
    "e6": "bench_e6_mdcs_case_study.py",
    "e7": "bench_e7_policy_ablation.py",
    "e8": "bench_e8_boot_resilience.py",
    "e9": "bench_e9_chaos.py",
    "e10": "bench_e10_scale.py",
    "e11": "bench_e11_energy.py",
    "e14": "bench_e14_survival.py",
    "f2_f4": "bench_fig2_3_4_grub.py",
    "f5_f8": "bench_fig5_8_detector.py",
    "f9_f10_f14_f15": "bench_fig9_15_disks.py",
    "t1": "bench_table1_catalog.py",
}


def report_stems():
    return sorted(p.stem for p in REPORTS_DIR.glob("*.txt"))


def test_every_report_has_a_live_producer():
    stems = report_stems()
    assert stems, "no reports found — wrong repo layout?"
    orphans = [s for s in stems if s not in PRODUCERS]
    assert orphans == [], (
        f"reports with no producing bench: {orphans} — either add the "
        f"bench to PRODUCERS or delete the stale artifact"
    )
    for stem in stems:
        assert (BENCH_DIR / PRODUCERS[stem]).is_file(), (
            f"{stem}.txt claims producer {PRODUCERS[stem]}, which is gone"
        )


def test_experiment_reports_match_the_registry():
    """Every ``e<N>`` report corresponds to a registered experiment, so
    ``repro-experiments run <id>`` can reproduce its numbers."""
    for stem in report_stems():
        if stem.startswith("e") and stem[1:].isdigit():
            assert stem in ALL_EXPERIMENTS, (
                f"report {stem}.txt has no experiment {stem!r} in the "
                f"registry"
            )


def test_every_bench_baseline_has_a_producing_bench():
    """Any ``BENCH_test_<name>.json`` on disk must correspond to a live
    ``def test_<name>`` in some ``benchmarks/*.py``.

    This is the check whose absence let a stale
    ``BENCH_test_bench_e11_energy.json`` rot in the tree for several PRs
    after the bench that once wrote it was abandoned: baselines are
    per-machine scratch, and one nothing can regenerate is pure cruft.
    """
    bench_sources = "\n".join(
        path.read_text() for path in BENCH_DIR.glob("bench_*.py")
    )
    orphans = []
    for baseline in REPORTS_DIR.glob("BENCH_*.json"):
        # prefer the baseline's own record of its producer (it carries
        # the original node name, so parametrized benches resolve too)
        try:
            node_name = json.loads(baseline.read_text())["bench"]
        except (OSError, ValueError, KeyError):
            node_name = baseline.stem[len("BENCH_"):]
        test_fn = node_name.split("[", 1)[0]
        if f"def {test_fn}(" not in bench_sources:
            orphans.append(baseline.name)
    assert orphans == [], (
        f"timing baselines with no producing bench: {orphans} — delete "
        f"them (they can never be regenerated)"
    )


def test_no_timing_baselines_committed():
    """``BENCH_*.json`` are per-machine scratch, regenerated on every
    bench run — they must stay untracked."""
    try:
        out = subprocess.run(
            ["git", "ls-files", "benchmarks/reports"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        pytest.skip("git unavailable")
    if out.returncode != 0:  # pragma: no cover - e.g. sdist checkout
        pytest.skip("not a git checkout")
    tracked = out.stdout.split()
    baselines = [p for p in tracked if pathlib.Path(p).name.startswith("BENCH_")]
    assert baselines == []
    for path in tracked:
        assert pathlib.Path(path).suffix == ".txt", (
            f"unexpected non-report artifact tracked: {path}"
        )
