"""Shared test fixtures: verbatim paper wires and golden traces.

The two Figure-6 wire strings are the paper's own examples of the
Figure-5 message format — tests across the suite (wire codec, detector,
property tests) must agree on them byte-for-byte, so they live here once.

``golden_trace_*.jsonl`` are checked-in canonical trace exports of one
tiny v1 and one tiny v2 scenario; ``tests/trace/test_golden_traces.py``
compares fresh runs against them and regenerates them when
``REPRO_REGEN_GOLDEN=1`` is set.
"""

from __future__ import annotations

from pathlib import Path

FIXTURES_DIR = Path(__file__).resolve().parent

#: Figure 6, first debug dump: idle queue ("00000" CPU fields + "none").
FIGURE6_IDLE_WIRE = "00000none"

#: Figure 6, second dump: stuck queue needing 4 CPUs for job 41191.
FIGURE6_STUCK_WIRE = "100041191.eridani.qgg.hud.ac.uk"

#: Both verbatim Figure-6 wires, for round-trip parametrisation.
FIGURE6_WIRES = (FIGURE6_IDLE_WIRE, FIGURE6_STUCK_WIRE)


def golden_trace_path(version: int) -> Path:
    """Path of the checked-in golden trace for middleware v1 or v2."""
    return FIXTURES_DIR / f"golden_trace_v{version}.jsonl"


def load_golden_trace(version: int) -> str:
    """The checked-in golden JSONL export (raw text)."""
    return golden_trace_path(version).read_text(encoding="ascii")
