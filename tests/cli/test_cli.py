"""CLI tests."""

import pytest

from repro.cli.main import main
from repro.experiments import ALL_EXPERIMENTS


def test_list_names_every_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for experiment_id in ALL_EXPERIMENTS:
        assert experiment_id in out


def test_run_single_experiment(capsys):
    assert main(["run", "t1"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "hybrid (dualboot-oscar)" in out


def test_run_multiple_quick(capsys):
    assert main(["run", "t1", "f9f10f14f15", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "== T1" in out and "== F9/F10/F14/F15" in out


def test_run_with_seed(capsys):
    assert main(["run", "f5f6f7f8", "--seed", "3"]) == 0
    assert "00000none" in capsys.readouterr().out


def test_unknown_experiment_exits():
    with pytest.raises(SystemExit, match="unknown experiment"):
        main(["run", "e99"])


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
