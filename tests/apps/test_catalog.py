"""Table-I catalog tests."""

import pytest

from repro.apps import (
    TABLE_I,
    app_by_name,
    linux_only,
    multi_platform,
    render_table1,
    supported_on,
    windows_only,
)
from repro.apps.application import Application, make_job_request
from repro.errors import ConfigurationError
from repro.simkernel.rng import RngStreams


def test_catalog_has_15_rows():
    assert len(TABLE_I) == 15


def test_platform_split_matches_paper():
    assert len(linux_only()) == 10
    assert {a.name for a in windows_only()} == {"Backburner", "Opera"}
    assert {a.name for a in multi_platform()} == {
        "COMSOL", "ANSYS FLUENT", "MATLAB",
    }


def test_supported_on_counts():
    assert len(supported_on("linux")) == 13
    assert len(supported_on("windows")) == 5


def test_platform_codes():
    assert app_by_name("DL_POLY").platform_code == "L"
    assert app_by_name("Backburner").platform_code == "W"
    assert app_by_name("MATLAB").platform_code == "W&L"


def test_app_by_name_unknown():
    with pytest.raises(ConfigurationError):
        app_by_name("Gaussian")


def test_descriptions_from_paper():
    assert app_by_name("CASTEP").description == (
        "CAmbridge Sequential Total Energy Package"
    )
    assert "3ds Max" in app_by_name("Backburner").description


def test_render_table1_contains_all_rows():
    text = render_table1()
    for app in TABLE_I:
        assert app.name in text
    assert "W&L" in text and "Table I" in text


def test_application_platform_validation():
    with pytest.raises(ConfigurationError):
        Application("X", "desc", frozenset())
    with pytest.raises(ConfigurationError):
        Application("X", "desc", frozenset({"beos"}))


def test_make_job_request_respects_platforms():
    rng = RngStreams(5)
    for app in TABLE_I:
        request = make_job_request(app, rng)
        assert request.os_name in app.platforms
        assert request.cores in app.profile.core_options
        assert request.runtime_s > 0


def test_make_job_request_preference_honoured_when_supported():
    rng = RngStreams(5)
    matlab = app_by_name("MATLAB")
    request = make_job_request(matlab, rng, platform_preference="windows")
    assert request.os_name == "windows"
    dlpoly = app_by_name("DL_POLY")
    request = make_job_request(dlpoly, rng, platform_preference="windows")
    assert request.os_name == "linux"  # preference unsupported -> native


def test_requests_deterministic_per_seed():
    a = make_job_request(app_by_name("MATLAB"), RngStreams(9))
    b = make_job_request(app_by_name("MATLAB"), RngStreams(9))
    assert a == b
