"""MDCS GA workload model tests."""


from repro.apps.matlab_mdcs import GaConfig, ga_burst, linux_background
from repro.simkernel.rng import RngStreams


def test_ga_burst_sequential_generations():
    rng = RngStreams(4)
    config = GaConfig(generations=6, workers=8, start_s=100.0)
    jobs = ga_burst(config, rng)
    assert len(jobs) == 6
    assert jobs[0].arrival_s == 100.0
    for earlier, later in zip(jobs, jobs[1:]):
        # generation k+1 arrives after generation k's expected end + think
        assert later.arrival_s >= (
            earlier.arrival_s + earlier.runtime_s + config.think_time_s - 1e-9
        )
    assert all(j.os_name == "windows" and j.cores == 8 for j in jobs)
    assert all(j.tag == "mdcs-ga" for j in jobs)


def test_ga_burst_deterministic():
    config = GaConfig()
    a = ga_burst(config, RngStreams(9))
    b = ga_burst(config, RngStreams(9))
    assert a == b


def test_linux_background_within_horizon():
    jobs = linux_background(RngStreams(2), horizon_s=7200.0)
    assert all(j.arrival_s < 7200.0 for j in jobs)
    assert all(j.os_name == "linux" for j in jobs)
    names = [j.name for j in jobs]
    assert len(names) == len(set(names))


def test_linux_background_rate_scales():
    few = linux_background(
        RngStreams(3), horizon_s=36_000.0, mean_interarrival_s=3600.0
    )
    many = linux_background(
        RngStreams(3), horizon_s=36_000.0, mean_interarrival_s=360.0
    )
    assert len(many) > len(few)
