"""Direct tests for small public helpers not covered elsewhere."""

import pytest

from repro.boot.pxelinux import default_config_path
from repro.oslayer.linux import standalone_menu_lst
from repro.pbs import JobSpec, PbsServer
from repro.pbs.formats import render_pbsnodes_entry, render_qstat_full_entry
from repro.pbs.scheduler import schedulable_backlog
from repro.simkernel import Simulator
from repro.simkernel.timeunits import format_clock, format_duration


def test_default_config_path():
    assert default_config_path() == "/pxelinux.cfg/default"


def test_standalone_menu_lst_boots_directly():
    from repro.boot.grubcfg import parse_grub_config

    text = standalone_menu_lst(boot_partition=2, root_partition=6)
    config = parse_grub_config(text)
    assert len(config.entries) == 1
    entry = config.entries[0]
    assert entry.title.endswith("-linux")
    assert entry.first("root") == "(hd0,1)"
    assert "root=/dev/sda6" in entry.first("kernel")


def test_format_clock():
    assert format_clock(0) == "00:00:00"
    assert format_clock(3661) == "01:01:01"
    assert format_clock(25 * 3600) == "01:00:00"  # wraps past midnight


def test_format_duration_negative():
    assert format_duration(-90) == "-1m30.0s"


@pytest.fixture()
def server():
    sim = Simulator()
    srv = PbsServer(sim)
    for i in range(1, 3):
        srv.create_node(f"enode{i:02d}", np=4)
        srv.node_up(f"enode{i:02d}")
    return srv


def test_render_single_entry_helpers(server):
    jobid = server.qsub(JobSpec(name="solo", ppn=4, runtime_s=10.0))
    job = server.jobs[jobid]
    job_text = render_qstat_full_entry(job, server.server_name)
    assert job_text.startswith(f"Job Id: {jobid}")
    assert "    Job_Name = solo" in job_text
    node_text = render_pbsnodes_entry(
        server.node("enode01"), server.sim.now
    )
    assert node_text.startswith("enode01.")
    assert "     np = 4" in node_text


def test_schedulable_backlog_respects_fcfs(server):
    # occupy everything
    server.qsub(JobSpec(name="fill", nodes=2, ppn=4, runtime_s=100.0))
    big = JobSpec(name="big", nodes=2, ppn=4, runtime_s=1.0)
    small = JobSpec(name="small", nodes=1, ppn=1, runtime_s=1.0)
    server.qsub(big)
    server.qsub(small)
    backlog = schedulable_backlog(server.queued_jobs(), server.nodes)
    assert backlog == []  # nothing fits, strict FCFS blocks behind `big`


def test_schedulable_backlog_consistent_prefix(server):
    queued = [
        server.jobs[server.qsub(JobSpec(name="fill", nodes=2, ppn=4, runtime_s=9.0))],
    ]
    # drain so nodes are free, then craft a queue snapshot by hand
    server.sim.run()
    a = server.jobs[server.qsub(JobSpec(name="a", nodes=1, ppn=4, runtime_s=50.0))]
    b = server.jobs[server.qsub(JobSpec(name="b", nodes=1, ppn=4, runtime_s=50.0))]
    c = server.jobs[server.qsub(JobSpec(name="c", nodes=1, ppn=4, runtime_s=50.0))]
    # a and b started (2 nodes); c queued
    backlog = schedulable_backlog(server.queued_jobs(), server.nodes)
    assert backlog == []  # no free cores for c
