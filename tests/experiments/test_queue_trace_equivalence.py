"""Whole-experiment proof that the calendar queue changes nothing.

The unit properties (``tests/simkernel/test_queue_equivalence.py``)
compare the queues on synthetic programs; this test closes the loop at
system level: every simulation experiment is run twice in quick mode —
once on the shipping :class:`~repro.simkernel.calqueue.CalendarQueue`
and once with :data:`repro.simkernel.kernel.DEFAULT_QUEUE` monkeypatched
back to the reference binary heap — and every attached trace export
must match byte for byte.  If the calendar's bucket boundaries ever
reordered a single tie on a *real* workload, this is the test that
would catch it.
"""

import importlib

import pytest

import repro.simkernel.kernel as kernel
from repro.experiments import ALL_EXPERIMENTS
from tests.trace.test_determinism import SIMULATION_EXPERIMENTS

SEED = 3


def _run(experiment_id):
    module = importlib.import_module(ALL_EXPERIMENTS[experiment_id])
    return module.run(seed=SEED, quick=True)


def test_calendar_is_the_shipping_default():
    assert kernel.DEFAULT_QUEUE == "calendar"


@pytest.mark.parametrize("experiment_id", SIMULATION_EXPERIMENTS)
def test_heap_and_calendar_give_byte_identical_traces(
    experiment_id, monkeypatch
):
    calendar = _run(experiment_id)

    monkeypatch.setattr(kernel, "DEFAULT_QUEUE", "heap")
    heap = _run(experiment_id)

    assert calendar.traces, f"{experiment_id} attached no traces"
    assert calendar.trace_exports().keys() == heap.trace_exports().keys()
    for label, export in calendar.trace_exports().items():
        assert export, f"{experiment_id} trace {label!r} is empty"
        assert export == heap.trace_exports()[label], (
            f"{experiment_id} trace {label!r} differs between the calendar "
            "and heap event queues"
        )
