"""Quick-mode smoke of every experiment: claims hold at CI size too."""

import importlib

import pytest

from repro.experiments import ALL_EXPERIMENTS


def run_quick(experiment_id):
    module = importlib.import_module(ALL_EXPERIMENTS[experiment_id])
    return module.run(seed=0, quick=True)


@pytest.mark.parametrize("experiment_id", sorted(ALL_EXPERIMENTS))
def test_experiment_runs_and_renders(experiment_id):
    output = run_quick(experiment_id)
    assert output.experiment_id
    text = output.render()
    assert output.title in text
    assert output.tables or output.notes
    assert output.headline


def test_t1_headline():
    h = run_quick("t1").headline
    assert h["hybrid_runs"] == 15 > h["windows_only_cluster_runs"]


def test_f2f3f4_switch_executes():
    h = run_quick("f2f3f4").headline
    assert h["script_ok"] and h["os_after_reboot"] == "windows"


def test_f5_wire_strings():
    h = run_quick("f5f6f7f8").headline
    assert h["wire_other"] == "00000none"
    assert h["wire_stuck"] == h["stuck_wire_expected"]


def test_disks_only_fig15_preserves_linux():
    h = run_quick("f9f10f14f15").headline
    assert (h["fig9_linux_survives"], h["fig10_linux_survives"],
            h["fig15_linux_survives"]) == (False, False, True)


def test_e1_claim_holds_quick():
    h = run_quick("e1").headline
    assert h["claim_under_5min"]
    assert h["max_switch_minutes"] < 5.0


def test_e2_shapes_quick():
    h = run_quick("e2").headline
    assert h["hybrid_at_least_matches_every_static_split"]
    assert h["eager_hybrid_beats_every_static_split"]


def test_e3_shapes_quick():
    h = run_quick("e3").headline
    assert h["bistable_warms_up"]
    assert h["monostable_wastes_more_core_hours"]


def test_e4_shapes_quick():
    h = run_quick("e4").headline
    assert h["v2_total_less_than_v1"]
    assert h["v2_has_zero_collateral"]


def test_e5_shapes_quick():
    h = run_quick("e5").headline
    assert h["wait_grows_with_cycle"]


def test_e6_seamless_quick():
    h = run_quick("e6").headline
    assert h["seamless"]
    assert h["switches"] >= 2


def test_e7_shapes_quick():
    h = run_quick("e7").headline
    assert h["eager_cuts_windows_wait_vs_fcfs"]


def test_e9_nodefail_quick():
    h = run_quick("e9").headline
    assert h["node_failures_recovered"]
    assert h["nodefail:v2"]["node_fences"] >= 1
    assert h["nodefail:v2"]["node_recoveries"] >= 1
    assert h["nodefail:v2"]["jobs_done"] == 3


def test_e10_shapes_quick():
    h = run_quick("e10").headline
    assert h["sizes"] == [32, 64]
    assert h["every_size_completed_jobs"]
    assert h["trace_invariants_ok"]
    # workload scales with the cluster: the larger run submits more jobs
    assert h["per_size"]["64"]["jobs"] > h["per_size"]["32"]["jobs"]


def test_e11_energy_quick():
    h = run_quick("e11").headline
    assert h["sizes"] == [8, 16]
    # the energy layer's acceptance criteria, at CI size
    assert h["power_aware_saves_energy"]
    assert h["equal_utilisation"]
    assert h["elastic_engaged"]
    assert h["burst_pool_engaged"]
    assert h["no_spurious_fences"]
    assert h["deterministic"] and h["trace_deterministic"]
    assert h["trace_invariants_ok"]
    for size in h["savings_pct_by_size"]:
        assert h["savings_pct_by_size"][size] > 5.0


def test_e14_survival_quick():
    h = run_quick("e14").headline
    assert h["sizes"] == [32, 64]
    # the resilience layer's acceptance criteria, at CI size
    assert h["storm_hit_running_jobs"]
    assert h["rerunnable_survival_is_100pct"]
    assert h["fenced_nodes_rejoined"]
    assert h["every_size_fenced_and_recovered"]
    assert h["checkpointing_reduces_lost_work"]
    assert h["deterministic"] and h["trace_deterministic"]
    assert h["trace_invariants_ok"]


def test_experiments_deterministic():
    a = run_quick("e5").headline["cycle_10m"]["wait_min"]
    b = run_quick("e5").headline["cycle_10m"]["wait_min"]
    assert a == b


def test_different_seeds_change_stochastic_results():
    module = importlib.import_module(ALL_EXPERIMENTS["e1"])
    a = module.run(seed=0, quick=True).headline["max_switch_minutes"]
    b = module.run(seed=1, quick=True).headline["max_switch_minutes"]
    assert a != b
