"""Whole-experiment proof that the indexed allocator changes nothing.

The unit properties (``tests/pbs/test_scheduler_index.py``) compare
placements on synthetic tables; this test closes the loop at system
level: every simulation experiment is run twice in quick mode — once
with the shipping :class:`NodeIndex` placement and once with
``PbsServer._place`` monkeypatched back to the reference
``allocate_fifo`` scan — and every attached trace export must match
byte for byte.  If the index ever diverged from the reference on a
*real* workload, the golden traces would have silently shifted; this
is the test that would catch it.
"""

import importlib

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.pbs.scheduler import allocate_fifo
from repro.pbs.server import PbsServer

SEED = 3

EXPERIMENTS = sorted(f"e{i}" for i in range(1, 10))


def _run(experiment_id):
    module = importlib.import_module(ALL_EXPERIMENTS[experiment_id])
    return module.run(seed=SEED, quick=True)


@pytest.mark.parametrize("experiment_id", EXPERIMENTS)
def test_reference_allocator_gives_identical_traces(
    experiment_id, monkeypatch
):
    indexed = _run(experiment_id)

    monkeypatch.setattr(
        PbsServer, "_place",
        lambda self, job: allocate_fifo(job, self.nodes),
    )
    reference = _run(experiment_id)

    assert indexed.traces, f"{experiment_id} attached no traces"
    assert indexed.trace_exports().keys() == reference.trace_exports().keys()
    for label, export in indexed.trace_exports().items():
        assert export == reference.trace_exports()[label], (
            f"{experiment_id} trace {label!r} differs between the indexed "
            "and reference allocators"
        )
