"""Every example script must run to completion from a fresh interpreter."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
SCRIPTS = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert "quickstart.py" in SCRIPTS
    assert len(SCRIPTS) >= 5


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()


def test_quickstart_narrates_a_switch():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True, text=True, timeout=300,
    )
    assert "switch 1 node(s) to windows" in result.stdout
    assert "rebooted into windows" in result.stdout


def test_policy_playground_rejects_unknown_args():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "policy_playground.py"),
         "black_friday"],
        capture_output=True, text=True, timeout=60,
    )
    assert result.returncode != 0
    assert "unknown scenario" in result.stderr
