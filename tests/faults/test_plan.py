"""Validation and description of declarative fault plans."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    BootHang,
    FaultPlan,
    HeadCrash,
    LinkFault,
    Partition,
    ServiceFlap,
    WireCorruption,
)


def test_empty_plan():
    plan = FaultPlan()
    assert plan.is_empty
    assert "(no faults)" in plan.describe()


def test_link_fault_matching():
    link = LinkFault(src="a", dst="b", loss_prob=0.5)
    assert link.matches("a", "b")
    assert link.matches("b", "a")  # bidirectional by default
    assert not link.matches("a", "c")
    one_way = LinkFault(src="a", dst="b", loss_prob=0.5, bidirectional=False)
    assert one_way.matches("a", "b")
    assert not one_way.matches("b", "a")


def test_link_fault_window_defaults_open_ended():
    link = LinkFault(src="a", dst="b", loss_prob=0.1)
    assert link.start_s == 0.0
    assert link.end_s == math.inf


@pytest.mark.parametrize("bad", [-0.1, 1.5])
def test_link_fault_bad_probability(bad):
    with pytest.raises(ConfigurationError):
        LinkFault(src="a", dst="b", loss_prob=bad)


def test_link_fault_bad_window():
    with pytest.raises(ConfigurationError):
        LinkFault(src="a", dst="b", start_s=10.0, end_s=5.0)


def test_partition_severs_both_directions():
    part = Partition(side_a=("lin",), side_b=("win",), start_s=0, end_s=10)
    assert part.severs("lin", "win")
    assert part.severs("win", "lin")
    assert not part.severs("lin", "other")


def test_partition_rejects_overlap_and_empty_sides():
    with pytest.raises(ConfigurationError):
        Partition(side_a=("x",), side_b=("x",), start_s=0, end_s=1)
    with pytest.raises(ConfigurationError):
        Partition(side_a=(), side_b=("x",), start_s=0, end_s=1)


def test_head_crash_validation():
    HeadCrash(side="linux", at_s=0.0, down_s=1.0)
    with pytest.raises(ConfigurationError):
        HeadCrash(side="macos", at_s=0.0, down_s=1.0)
    with pytest.raises(ConfigurationError):
        HeadCrash(side="linux", at_s=0.0, down_s=0.0)


def test_corruption_validation():
    WireCorruption(port=5800, prob=0.3)
    with pytest.raises(ConfigurationError):
        WireCorruption(port=5800, prob=0.3, modes=("evil-bit",))
    with pytest.raises(ConfigurationError):
        WireCorruption(port=5800, prob=0.3, modes=())


def test_service_flap_validation():
    ServiceFlap(service="dhcp", first_down_at_s=0.0, down_s=5.0)
    with pytest.raises(ConfigurationError):
        ServiceFlap(service="ntp", first_down_at_s=0.0, down_s=5.0)
    with pytest.raises(ConfigurationError):
        # repeated outages need a period longer than the outage itself
        ServiceFlap(service="tftp", first_down_at_s=0.0, down_s=5.0,
                    period_s=5.0, count=2)


def test_boot_hang_validation():
    BootHang()
    with pytest.raises(ConfigurationError):
        BootHang(times=0)


def test_describe_mentions_every_fault():
    plan = FaultPlan(
        name="full",
        link_faults=(LinkFault(src="a", dst="b", loss_prob=0.2),),
        partitions=(Partition(side_a=("a",), side_b=("b",), start_s=1, end_s=2),),
        head_crashes=(HeadCrash(side="windows", at_s=5.0, down_s=3.0),),
        corruptions=(WireCorruption(port=5800, prob=0.1),),
        service_flaps=(ServiceFlap(service="dhcp", first_down_at_s=0.0, down_s=2.0),),
        boot_hangs=(BootHang(node="enode01"),),
    )
    text = plan.describe()
    for needle in ("link", "partition", "crash", "corrupt", "flap", "hang-at-boot"):
        assert needle in text
