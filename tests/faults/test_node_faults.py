"""NodeCrash/NodeFlap plans and their injection against real hardware."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultInjector, FaultPlan, NodeCrash, NodeFlap
from repro.hardware import INTEL_Q8200, ComputeNode, NodeState
from repro.hardware.nic import Nic, mac_for_index
from repro.netsvc import Network
from repro.simkernel import MINUTE, Simulator
from repro.simkernel.rng import RngStreams
from tests.conftest import make_v1_disk


def make_node(sim, index=1):
    node = ComputeNode(
        sim=sim,
        name=f"enode{index:02d}",
        spec=INTEL_Q8200,
        nic=Nic(mac_for_index(index)),
        rng=RngStreams(index),
    )
    node.disk = make_v1_disk()
    return node


@pytest.fixture()
def rig():
    sim = Simulator()
    network = Network(sim, latency_s=0.001)
    nodes = {f"enode{i:02d}": make_node(sim, i) for i in (1, 2)}
    for node in nodes.values():
        node.power_on()
    sim.run()
    # fault times are absolute; anchor the plans after the boots settle
    return sim, network, nodes, sim.now


# -- plan validation ----------------------------------------------------------


def test_node_crash_validation():
    NodeCrash(node="n1", at_s=0.0)  # boundary is legal
    with pytest.raises(ConfigurationError):
        NodeCrash(node="n1", at_s=-1.0)
    with pytest.raises(ConfigurationError):
        NodeCrash(node="n1", at_s=10.0, restart_after_s=0.0)


def test_node_flap_validation():
    NodeFlap(node="n1", first_at_s=0.0, down_s=60.0, period_s=120.0, count=2)
    with pytest.raises(ConfigurationError):
        NodeFlap(node="n1", first_at_s=-1.0, down_s=60.0)
    with pytest.raises(ConfigurationError):
        NodeFlap(node="n1", first_at_s=0.0, down_s=0.0)
    with pytest.raises(ConfigurationError):
        NodeFlap(node="n1", first_at_s=0.0, down_s=60.0, count=0)
    with pytest.raises(ConfigurationError):
        # overlapping cycles: the node would still be down at the next crash
        NodeFlap(node="n1", first_at_s=0.0, down_s=60.0, period_s=30.0, count=2)


def test_plan_with_node_faults_is_not_empty():
    plan = FaultPlan(node_crashes=(NodeCrash(node="n1", at_s=5.0),))
    assert not plan.is_empty
    assert "n1" in plan.describe()
    flappy = FaultPlan(node_flaps=(
        NodeFlap(node="n2", first_at_s=1.0, down_s=60.0, count=1),
    ))
    assert not flappy.is_empty
    assert "n2" in flappy.describe()


# -- injector validation ------------------------------------------------------


def test_injector_requires_node_handles(rig):
    sim, network, _nodes, t0 = rig
    plan = FaultPlan(node_crashes=(NodeCrash(node="enode01", at_s=t0 + 5.0),))
    with pytest.raises(ConfigurationError):
        FaultInjector(sim, network, RngStreams(0), plan).arm()


def test_injector_rejects_unknown_target(rig):
    sim, network, nodes, t0 = rig
    plan = FaultPlan(node_crashes=(NodeCrash(node="ghost", at_s=t0 + 5.0),))
    with pytest.raises(ConfigurationError):
        FaultInjector(sim, network, RngStreams(0), plan, nodes=nodes).arm()


# -- injection ----------------------------------------------------------------


def test_crash_and_restart_schedule(rig):
    sim, network, nodes, t0 = rig
    plan = FaultPlan(node_crashes=(
        NodeCrash(node="enode01", at_s=t0 + 10.0, restart_after_s=5 * MINUTE),
    ))
    injector = FaultInjector(sim, network, RngStreams(0), plan, nodes=nodes)
    injector.arm()

    sim.run(until=t0 + 11.0)
    assert nodes["enode01"].state is NodeState.OFF
    assert injector.counters["node-crash:enode01"] == 1

    sim.run(until=t0 + 10.0 + 5 * MINUTE + 1.0)
    assert nodes["enode01"].state is NodeState.BOOTING
    assert injector.counters["node-restart:enode01"] == 1
    sim.run()
    assert nodes["enode01"].state is NodeState.UP
    # the bystander never flinched
    assert nodes["enode02"].state is NodeState.UP


def test_crash_without_restart_stays_dark(rig):
    sim, network, nodes, t0 = rig
    plan = FaultPlan(node_crashes=(NodeCrash(node="enode01", at_s=t0 + 10.0),))
    FaultInjector(sim, network, RngStreams(0), plan, nodes=nodes).arm()
    sim.run()
    assert nodes["enode01"].state is NodeState.OFF


def test_flap_crashes_repeatedly(rig):
    sim, network, nodes, t0 = rig
    plan = FaultPlan(node_flaps=(
        NodeFlap(node="enode02", first_at_s=t0 + 10.0, down_s=2 * MINUTE,
                 period_s=20 * MINUTE, count=3),
    ))
    injector = FaultInjector(sim, network, RngStreams(0), plan, nodes=nodes)
    injector.arm()
    sim.run()
    assert injector.counters["node-crash:enode02"] == 3
    assert injector.counters["node-restart:enode02"] == 3
    assert nodes["enode02"].state is NodeState.UP


def test_restart_of_already_repowered_node_is_skipped(rig):
    sim, network, nodes, t0 = rig
    plan = FaultPlan(node_crashes=(
        NodeCrash(node="enode01", at_s=t0 + 10.0, restart_after_s=10 * MINUTE),
    ))
    injector = FaultInjector(sim, network, RngStreams(0), plan, nodes=nodes)
    injector.arm()
    sim.run(until=t0 + MINUTE)
    # an admin beats the injector to the power button
    nodes["enode01"].power_on()
    sim.run()
    assert nodes["enode01"].state is NodeState.UP
    # the injector's restart saw a live node and stood down
    assert injector.counters.get("node-restart:enode01", 0) == 0
