"""The fault injector against a bare simulated LAN.

These tests exercise the injector below the middleware: a two-host
network, explicit plans, and direct counter/delivery assertions.  The
chaos experiment (E9) covers the full control-plane integration.
"""

import types

import pytest

from repro.core.wire import QueueStateMessage
from repro.errors import ConfigurationError, MiddlewareError
from repro.faults import (
    CORRUPTION_MODES,
    BootHang,
    FaultInjector,
    FaultPlan,
    HeadCrash,
    LinkFault,
    Partition,
    ServiceFlap,
    WireCorruption,
    corrupt_wire,
)
from repro.netsvc import Network
from repro.simkernel import Simulator
from repro.simkernel.rng import RngStreams

IDLE_WIRE = "00000none"
STUCK_WIRE = "100041191.eridani.qgg.hud.ac.uk"


@pytest.fixture()
def lan():
    sim = Simulator()
    net = Network(sim, latency_s=0.001)
    a = net.register("a")
    b = net.register("b")
    inbox = b.listen(5800)
    return sim, net, a, inbox


def flood(sim, net, host, count, payload=IDLE_WIRE, port=5800):
    for i in range(count):
        sim.schedule(float(i), host.send, "b", port, payload)
    sim.run()


@pytest.mark.parametrize("mode", CORRUPTION_MODES)
@pytest.mark.parametrize("wire", [IDLE_WIRE, STUCK_WIRE])
def test_corrupt_wire_always_breaks_decode(mode, wire):
    damaged = corrupt_wire(wire, mode)
    assert damaged != wire
    with pytest.raises(MiddlewareError):
        QueueStateMessage.decode(damaged)


def test_corrupt_wire_unknown_mode():
    with pytest.raises(ConfigurationError):
        corrupt_wire(IDLE_WIRE, "evil-bit")


def drain(inbox):
    out = []
    while True:
        msg = inbox.try_get()
        if msg is None:
            return out
        out.append(msg.payload)


def test_link_loss_is_deterministic(lan):
    def run(seed):
        sim = Simulator()
        net = Network(sim, latency_s=0.001)
        a = net.register("a")
        inbox = net.register("b").listen(5800)
        plan = FaultPlan(link_faults=(LinkFault(src="a", dst="b", loss_prob=0.5),))
        FaultInjector(sim, net, RngStreams(seed), plan).arm()
        for i in range(200):
            sim.schedule(float(i), a.send, "b", 5800, i)
        sim.run()
        return [m for m in drain(inbox)]

    first, second = run(seed=7), run(seed=7)
    assert first == second                      # same (seed, plan) → identical
    assert 40 < len(first) < 160                # the loss actually bites
    assert run(seed=8) != first                 # the seed actually matters


def test_new_consumer_does_not_perturb_existing_streams():
    """Adding a corruption fault must not change which messages the loss
    stream drops — named substreams are independent by construction."""

    def surviving_indices(plan):
        sim = Simulator()
        net = Network(sim, latency_s=0.001)
        a = net.register("a")
        inbox = net.register("b").listen(5800)
        FaultInjector(sim, net, RngStreams(3), plan).arm()
        for i in range(200):
            sim.schedule(float(i), a.send, "b", 5800, str(i))
        sim.run()
        return [int(p.lstrip("#")[::-1] if p.startswith("#") else p)
                for p in drain(inbox)]

    loss_only = FaultPlan(link_faults=(LinkFault(src="a", dst="b", loss_prob=0.4),))
    with_corruption = FaultPlan(
        link_faults=(LinkFault(src="a", dst="b", loss_prob=0.4),),
        corruptions=(WireCorruption(port=5800, prob=0.5, modes=("garbage",)),),
    )
    assert surviving_indices(loss_only) == surviving_indices(with_corruption)


def test_partition_window(lan):
    sim, net, a, inbox = lan
    plan = FaultPlan(partitions=(
        Partition(side_a=("a",), side_b=("b",), start_s=2.0, end_s=4.0),
    ))
    injector = FaultInjector(sim, net, RngStreams(0), plan)
    injector.arm()
    flood(sim, net, a, 6)  # sends at t=0..5
    assert drain(inbox) == [IDLE_WIRE] * 4  # t=2 and t=3 severed
    assert injector.counters["partition"] == 2
    assert net.drops_by_reason["injected"] == 2


def test_jitter_delays_but_delivers(lan):
    sim, net, a, inbox = lan
    plan = FaultPlan(link_faults=(
        LinkFault(src="a", dst="b", jitter_s=2.0),
    ))
    FaultInjector(sim, net, RngStreams(1), plan).arm()
    a.send("b", 5800, "x")
    sim.run()
    assert drain(inbox) == ["x"]
    assert sim.now > 0.001  # some jitter was added


def test_corruption_rewrites_strings_only(lan):
    sim, net, a, inbox = lan
    plan = FaultPlan(corruptions=(
        WireCorruption(port=5800, prob=1.0, modes=("bad-flag",)),
    ))
    injector = FaultInjector(sim, net, RngStreams(0), plan)
    injector.arm()
    a.send("b", 5800, IDLE_WIRE)
    a.send("b", 5800, ("ack", IDLE_WIRE))  # tuples pass through untouched
    sim.run()
    got = drain(inbox)
    assert got[0] == "X" + IDLE_WIRE[1:]
    assert got[1] == ("ack", IDLE_WIRE)
    assert injector.counters["corrupted:bad-flag"] == 1


def test_corruption_respects_port(lan):
    sim, net, a, inbox = lan
    other_inbox = net.host("b").listen(5900)
    plan = FaultPlan(corruptions=(
        WireCorruption(port=5900, prob=1.0, modes=("garbage",)),
    ))
    FaultInjector(sim, net, RngStreams(0), plan).arm()
    a.send("b", 5800, IDLE_WIRE)
    a.send("b", 5900, IDLE_WIRE)
    sim.run()
    assert drain(inbox) == [IDLE_WIRE]
    assert drain(other_inbox) != [IDLE_WIRE]


def test_head_crash_calls_control(lan):
    sim, net, _, _ = lan
    calls = []
    control = types.SimpleNamespace(
        crash=lambda side: calls.append(("crash", side, sim.now)),
        restart=lambda side: calls.append(("restart", side, sim.now)),
    )
    plan = FaultPlan(head_crashes=(HeadCrash(side="windows", at_s=5.0, down_s=3.0),))
    injector = FaultInjector(sim, net, RngStreams(0), plan, control=control)
    injector.arm()
    sim.run()
    assert calls == [("crash", "windows", 5.0), ("restart", "windows", 8.0)]
    assert injector.counters["crash:windows"] == 1


def test_service_flap_toggles_enabled(lan):
    sim, net, _, _ = lan
    dhcp = types.SimpleNamespace(enabled=True)
    history = []
    plan = FaultPlan(service_flaps=(
        ServiceFlap(service="dhcp", first_down_at_s=1.0, down_s=2.0,
                    period_s=10.0, count=2),
    ))
    injector = FaultInjector(sim, net, RngStreams(0), plan, dhcp=dhcp)
    injector.arm()
    for t in (0.5, 1.5, 3.5, 11.5, 13.5):
        sim.schedule_at(t, lambda: history.append((sim.now, dhcp.enabled)))
    sim.run()
    assert history == [
        (0.5, True), (1.5, False), (3.5, True), (11.5, False), (13.5, True),
    ]
    assert injector.counters["flap:dhcp"] == 2


def test_boot_hang_hook_counts_down(lan):
    sim, net, _, _ = lan
    env = types.SimpleNamespace(hang_hook=None)
    plan = FaultPlan(boot_hangs=(BootHang(node="*", times=2),))
    injector = FaultInjector(sim, net, RngStreams(0), plan, env=env)
    injector.arm()
    assert env.hang_hook is not None
    assert env.hang_hook("aa:bb") is not None
    assert env.hang_hook("aa:bb") is not None
    assert env.hang_hook("aa:bb") is None  # budget of 2 exhausted
    assert injector.counters["boot-hang"] == 2


def test_targeted_boot_hang_needs_mac(lan):
    sim, net, _, _ = lan
    env = types.SimpleNamespace(hang_hook=None)
    plan = FaultPlan(boot_hangs=(BootHang(node="enode01"),))
    with pytest.raises(ConfigurationError):
        FaultInjector(sim, net, RngStreams(0), plan, env=env)
    injector = FaultInjector(
        sim, net, RngStreams(0), plan, env=env,
        node_macs={"enode01": "aa:01"},
    )
    injector.arm()
    assert env.hang_hook("ff:ff") is None    # some other node boots fine
    assert env.hang_hook("aa:01") is not None


def test_missing_handles_rejected(lan):
    sim, net, _, _ = lan
    with pytest.raises(ConfigurationError):
        FaultInjector(
            sim, net, RngStreams(0),
            FaultPlan(head_crashes=(HeadCrash(side="linux", at_s=0, down_s=1),)),
        )
    with pytest.raises(ConfigurationError):
        FaultInjector(
            sim, net, RngStreams(0),
            FaultPlan(service_flaps=(
                ServiceFlap(service="tftp", first_down_at_s=0, down_s=1),
            )),
        )
    with pytest.raises(ConfigurationError):
        FaultInjector(
            sim, net, RngStreams(0),
            FaultPlan(boot_hangs=(BootHang(),)),
        )


def test_double_arm_rejected_and_disarm_removes_tap(lan):
    sim, net, a, inbox = lan
    env = types.SimpleNamespace(hang_hook=None)
    plan = FaultPlan(
        link_faults=(LinkFault(src="a", dst="b", loss_prob=1.0),),
        boot_hangs=(BootHang(),),
    )
    injector = FaultInjector(sim, net, RngStreams(0), plan, env=env)
    injector.arm()
    with pytest.raises(ConfigurationError):
        injector.arm()
    injector.disarm()
    assert env.hang_hook is None
    a.send("b", 5800, "x")
    sim.run()
    assert drain(inbox) == ["x"]  # loss tap is gone
