"""Unit tests for the LAN segment."""

import pytest

from repro.errors import NetworkError
from repro.netsvc import DeliveryVerdict, Network
from repro.simkernel import Simulator


@pytest.fixture()
def sim():
    return Simulator()


@pytest.fixture()
def net(sim):
    return Network(sim, latency_s=0.001)


def test_register_and_lookup(net):
    host = net.register("linhead")
    assert net.host("linhead") is host
    assert net.has_host("linhead")
    assert not net.has_host("winhead")


def test_duplicate_name_rejected(net):
    net.register("a")
    with pytest.raises(NetworkError):
        net.register("a")


def test_unknown_host_lookup_raises(net):
    with pytest.raises(NetworkError):
        net.host("ghost")


def test_negative_latency_rejected(sim):
    with pytest.raises(NetworkError):
        Network(sim, latency_s=-1)


def test_message_delivery_with_latency(sim, net):
    a = net.register("a")
    b = net.register("b")
    inbox = b.listen(5000)
    a.send("b", 5000, "hello")
    assert len(inbox) == 0  # not yet delivered
    sim.run()
    assert sim.now == 0.001
    msg = inbox.try_get()
    assert (msg.src, msg.dst, msg.port, msg.payload) == ("a", "b", 5000, "hello")


def test_messages_ordered(sim, net):
    a = net.register("a")
    b = net.register("b")
    inbox = b.listen(1)
    for i in range(5):
        a.send("b", 1, i)
    sim.run()
    got = [inbox.try_get().payload for _ in range(5)]
    assert got == [0, 1, 2, 3, 4]


def test_send_to_unknown_host_is_dropped(sim, net):
    a = net.register("a")
    a.send("ghost", 1, "x")
    sim.run()
    assert net.messages_dropped == 1


def test_send_to_unbound_port_is_dropped(sim, net):
    a = net.register("a")
    net.register("b")
    a.send("b", 99, "x")
    sim.run()
    assert net.messages_dropped == 1


def test_send_to_offline_host_is_dropped(sim, net):
    a = net.register("a")
    b = net.register("b")
    b.listen(1)
    b.online = False
    a.send("b", 1, "x")
    sim.run()
    assert net.messages_dropped == 1


def test_send_from_unknown_host_raises(net):
    with pytest.raises(NetworkError):
        net.deliver("ghost", "a", 1, "x")


def test_double_bind_rejected(net):
    b = net.register("b")
    b.listen(7)
    with pytest.raises(NetworkError):
        b.listen(7)


def test_close_listener_allows_rebind(net):
    b = net.register("b")
    listener = b.listen(7)
    net.close_listener(listener)
    b.listen(7)  # no error


def test_drops_counted_by_reason(sim, net):
    a = net.register("a")
    b = net.register("b")
    b.listen(1)
    a.send("ghost", 1, "x")   # unknown_host
    a.send("b", 99, "x")      # no_listener
    sim.run()
    b.online = False
    a.send("b", 1, "x")       # offline
    sim.run()
    assert net.drops_by_reason["unknown_host"] == 1
    assert net.drops_by_reason["no_listener"] == 1
    assert net.drops_by_reason["offline"] == 1
    assert net.drops_by_reason["injected"] == 0
    assert net.messages_dropped == 3  # back-compat total


def test_delivered_counter(sim, net):
    a = net.register("a")
    b = net.register("b")
    b.listen(1)
    a.send("b", 1, "x")
    sim.run()
    assert net.messages_delivered == 1
    assert net.messages_dropped == 0


def test_tap_can_drop(sim, net):
    a = net.register("a")
    b = net.register("b")
    inbox = b.listen(1)
    net.add_tap(lambda m: DeliveryVerdict(drop=True) if m.payload == "bad" else None)
    a.send("b", 1, "bad")
    a.send("b", 1, "good")
    sim.run()
    assert net.drops_by_reason["injected"] == 1
    assert inbox.try_get().payload == "good"
    assert inbox.try_get() is None


def test_tap_can_delay(sim, net):
    a = net.register("a")
    b = net.register("b")
    inbox = b.listen(1)
    net.add_tap(lambda m: DeliveryVerdict(extra_delay_s=1.0))
    a.send("b", 1, "x")
    sim.run()
    assert sim.now == pytest.approx(1.001)
    assert inbox.try_get().payload == "x"


def test_tap_can_rewrite_payload(sim, net):
    a = net.register("a")
    b = net.register("b")
    inbox = b.listen(1)
    net.add_tap(lambda m: DeliveryVerdict(payload="mangled", rewrite=True))
    a.send("b", 1, "clean")
    sim.run()
    assert inbox.try_get().payload == "mangled"


def test_remove_tap(sim, net):
    a = net.register("a")
    b = net.register("b")
    inbox = b.listen(1)
    tap = lambda m: DeliveryVerdict(drop=True)  # noqa: E731
    net.add_tap(tap)
    net.remove_tap(tap)
    net.remove_tap(tap)  # no-op on absent tap
    a.send("b", 1, "x")
    sim.run()
    assert inbox.try_get().payload == "x"


def test_blocking_receive_in_process(sim, net):
    a = net.register("a")
    b = net.register("b")
    inbox = b.listen(1)
    got = []

    def server():
        msg = yield inbox.get()
        got.append((sim.now, msg.payload))

    sim.spawn(server())
    sim.schedule(5.0, a.send, "b", 1, "late")
    sim.run()
    assert got == [(5.001, "late")]
