"""Unit tests for DHCP and TFTP services."""

import pytest

from repro.errors import NetworkError
from repro.netsvc import DhcpServer, TftpServer
from repro.netsvc.dhcp import normalize_mac
from repro.storage import Filesystem, FsType


def test_normalize_mac_forms():
    assert normalize_mac("00-1E-C9-3A-BB-01") == "00:1e:c9:3a:bb:01"
    assert normalize_mac("aa:bb:cc:dd:ee:ff") == "aa:bb:cc:dd:ee:ff"
    with pytest.raises(NetworkError):
        normalize_mac("not-a-mac")


def test_reserved_mac_gets_pinned_ip():
    dhcp = DhcpServer(subnet_prefix="10.0.0.")
    dhcp.reserve("aa:bb:cc:dd:ee:01", 11)
    lease = dhcp.discover("AA-BB-CC-DD-EE-01")
    assert lease.ip == "10.0.0.11"


def test_unknown_mac_draws_from_pool():
    dhcp = DhcpServer(pool_start=100, pool_end=102)
    l1 = dhcp.discover("aa:bb:cc:dd:ee:01")
    l2 = dhcp.discover("aa:bb:cc:dd:ee:02")
    assert {l1.ip, l2.ip} == {"192.168.1.100", "192.168.1.101"}
    assert dhcp.discover("aa:bb:cc:dd:ee:03") is None  # pool exhausted


def test_lease_is_stable_until_released():
    dhcp = DhcpServer()
    l1 = dhcp.discover("aa:bb:cc:dd:ee:01")
    l2 = dhcp.discover("aa:bb:cc:dd:ee:01")
    assert l1 is l2
    dhcp.release("aa:bb:cc:dd:ee:01")
    assert dhcp.active_leases == 0


def test_bootfile_default_and_override():
    dhcp = DhcpServer(next_server="linhead", default_bootfile="/grldr")
    dhcp.set_bootfile("aa:bb:cc:dd:ee:02", "/pxelinux.0")
    a = dhcp.discover("aa:bb:cc:dd:ee:01")
    b = dhcp.discover("aa:bb:cc:dd:ee:02")
    assert (a.next_server, a.bootfile) == ("linhead", "/grldr")
    assert b.bootfile == "/pxelinux.0"
    dhcp.clear_bootfile("aa:bb:cc:dd:ee:02")
    dhcp.release("aa:bb:cc:dd:ee:02")
    assert dhcp.discover("aa:bb:cc:dd:ee:02").bootfile == "/grldr"


def test_disabled_dhcp_offers_nothing():
    dhcp = DhcpServer()
    dhcp.enabled = False
    assert dhcp.discover("aa:bb:cc:dd:ee:01") is None


@pytest.fixture()
def tftp():
    fs = Filesystem(FsType.EXT3, label="headroot")
    fs.write("/tftpboot/grldr", "ROM:grub4dos")
    fs.write("/tftpboot/menu.lst/default", "default=0\n")
    return TftpServer(fs)


def test_tftp_fetch(tftp):
    assert tftp.fetch("/grldr") == "ROM:grub4dos"
    assert tftp.requests_served == 1


def test_tftp_missing_file_raises(tftp):
    with pytest.raises(NetworkError):
        tftp.fetch("/nope")
    assert tftp.requests_failed == 1


def test_tftp_disabled_raises(tftp):
    tftp.enabled = False
    with pytest.raises(NetworkError):
        tftp.fetch("/grldr")
    assert not tftp.exists("/grldr")


def test_tftp_exists_and_put(tftp):
    assert tftp.exists("/menu.lst/default")
    tftp.put("/menu.lst/flag", "default=1\n")
    assert tftp.fetch("/menu.lst/flag") == "default=1\n"


def test_tftp_listdir(tftp):
    tftp.put("/menu.lst/01-aa-bb-cc-dd-ee-01", "x")
    assert tftp.listdir("/menu.lst") == ["01-aa-bb-cc-dd-ee-01", "default"]


def test_tftp_path_cannot_escape_root(tftp):
    # "/../etc/passwd" normalises inside the export tree
    with pytest.raises(NetworkError):
        tftp.fetch("/../outside")
